// Package gen provides seeded synthetic bipartite graph generators standing
// in for the paper's input suite (§IV-B, Table II). The paper groups its
// inputs into three classes that drive algorithm behaviour through matching
// number, degree skew, and diameter:
//
//   - scientific computing & road networks (grid/mesh/lattice: near-perfect
//     matching number, low degree, high diameter) — Grid, Mesh, RoadNet;
//   - scale-free graphs (skewed degrees, low diameter) — RMAT, ScaleFree;
//   - web & other networks with LOW matching number (rank-deficient,
//     skewed) — WebLike, RankDeficient.
//
// All generators are deterministic for a given seed.
package gen

import (
	"math/rand"

	"graftmatch/internal/bipartite"
)

// ER generates an Erdős–Rényi-style random bipartite graph with nx, ny
// vertices and approximately m distinct edges.
func ER(nx, ny int32, m int64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nx, ny)
	b.Reserve(int(m))
	if nx == 0 || ny == 0 {
		return b.Build()
	}
	for i := int64(0); i < m; i++ {
		x := int32(rng.Intn(int(nx)))
		y := int32(rng.Intn(int(ny)))
		_ = b.AddEdge(x, y)
	}
	return b.Build()
}

// Grid generates a 2-D five-point-stencil mesh interpreted as the bipartite
// graph of a rows×cols sparse matrix (vertex (i,j) row connected to its own
// column and the columns of its lattice neighbors). Such matrices come from
// PDE discretizations — the paper's "scientific computing" class — and have
// a perfect or near-perfect matching.
func Grid(rows, cols int32) *bipartite.Graph {
	n := rows * cols
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(5 * int64(n)))
	id := func(i, j int32) int32 { return i*cols + j }
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			v := id(i, j)
			_ = b.AddEdge(v, v)
			if i > 0 {
				_ = b.AddEdge(v, id(i-1, j))
			}
			if i < rows-1 {
				_ = b.AddEdge(v, id(i+1, j))
			}
			if j > 0 {
				_ = b.AddEdge(v, id(i, j-1))
			}
			if j < cols-1 {
				_ = b.AddEdge(v, id(i, j+1))
			}
		}
	}
	return b.Build()
}

// Mesh generates a randomized triangulated mesh-like matrix (grid plus one
// random diagonal per cell), a stand-in for delaunay/hugetrace instances.
func Mesh(rows, cols int32, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(6 * int64(n)))
	id := func(i, j int32) int32 { return i*cols + j }
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			v := id(i, j)
			_ = b.AddEdge(v, v)
			if i > 0 {
				_ = b.AddEdge(v, id(i-1, j))
			}
			if j > 0 {
				_ = b.AddEdge(v, id(i, j-1))
			}
			if i > 0 && j > 0 {
				if rng.Intn(2) == 0 {
					_ = b.AddEdge(v, id(i-1, j-1))
				} else {
					_ = b.AddEdge(id(i, j-1), id(i-1, j))
				}
			}
		}
	}
	return b.Build()
}

// RoadNet generates a road-network-like instance: a sparse lattice with
// random edge deletions and a few long-range shortcuts. Low, near-uniform
// degree and very high diameter, standing in for road_usa.
func RoadNet(rows, cols int32, keepProb float64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(4 * int64(n)))
	id := func(i, j int32) int32 { return i*cols + j }
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			v := id(i, j)
			_ = b.AddEdge(v, v)
			if i > 0 && rng.Float64() < keepProb {
				_ = b.AddEdge(v, id(i-1, j))
				_ = b.AddEdge(id(i-1, j), v)
			}
			if j > 0 && rng.Float64() < keepProb {
				_ = b.AddEdge(v, id(i, j-1))
				_ = b.AddEdge(id(i, j-1), v)
			}
		}
	}
	// A sprinkle of shortcuts (ramps/bridges).
	for k := int32(0); k < n/64; k++ {
		x := int32(rng.Intn(int(n)))
		y := int32(rng.Intn(int(n)))
		_ = b.AddEdge(x, y)
	}
	return b.Build()
}

// RMAT generates a Graph500-style RMAT bipartite graph of 2^scale vertices
// per side and edgeFactor·2^scale edges using recursive quadrant sampling
// with probabilities (a, b, c, d), a+b+c+d = 1. The default Graph500
// parameters are (0.57, 0.19, 0.19, 0.05).
func RMAT(scale int, edgeFactor int, a, bb, c float64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int32(1) << scale
	m := int64(edgeFactor) * int64(n)
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(m))
	for i := int64(0); i < m; i++ {
		x, y := rmatEdge(rng, scale, a, bb, c)
		_ = b.AddEdge(x, y)
	}
	return b.Build()
}

func rmatEdge(rng *rand.Rand, scale int, a, b, c float64) (int32, int32) {
	var x, y int32
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < a:
			// upper-left: nothing set
		case r < a+b:
			y |= 1 << bit
		case r < a+b+c:
			x |= 1 << bit
		default:
			x |= 1 << bit
			y |= 1 << bit
		}
	}
	return x, y
}

// ScaleFree generates a preferential-attachment bipartite graph: each new X
// vertex attaches k edges to Y vertices chosen proportionally to their
// current degree (plus one smoothing). Stands in for coPapersDBLP /
// amazon0312 / cit-patents style graphs.
func ScaleFree(nx, ny int32, k int, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nx, ny)
	b.Reserve(int(nx) * k)
	if ny == 0 {
		return b.Build()
	}
	// Repeated-endpoint list implements preferential attachment: sampling
	// a uniform element of hits is proportional to degree+implicit prior.
	hits := make([]int32, 0, int(nx)*k)
	for x := int32(0); x < nx; x++ {
		for e := 0; e < k; e++ {
			var y int32
			if len(hits) == 0 || rng.Float64() < 0.2 {
				y = int32(rng.Intn(int(ny)))
			} else {
				y = hits[rng.Intn(len(hits))]
			}
			_ = b.AddEdge(x, y)
			hits = append(hits, y)
		}
	}
	return b.Build()
}

// WebLike generates a web-crawl-like graph with strongly skewed degrees and
// a LOW matching number: a fraction deadFrac of X vertices keep all their
// edges but have them redirected into a small saturated hub core of Y
// vertices, the structure of crawl graphs where millions of leaf pages all
// point at the same popular hubs. Those X vertices are unmatchable once the
// core saturates, yet their alternating search trees are large — exactly
// the regime in which failed trees are expensive to rebuild and tree
// grafting pays off (§V-A, third input class: wikipedia / web-Google /
// wb-edu).
func WebLike(scale int, edgeFactor int, deadFrac float64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int32(1) << scale
	m := int64(edgeFactor) * int64(n)
	core := n / 8
	if core < 1 {
		core = 1
	}
	dead := make([]bool, n)
	for i := range dead {
		dead[i] = rng.Float64() < deadFrac
	}
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(m))
	for i := int64(0); i < m; i++ {
		x, y := rmatEdge(rng, scale, 0.65, 0.15, 0.15)
		if dead[x] {
			y %= core // leaf pages link only into the popular hub core
		}
		_ = b.AddEdge(x, y)
	}
	return b.Build()
}

// RankDeficient generates a graph whose maximum matching is exactly
// targetCard, far below min(nx, ny): X vertices 0..targetCard-1 get a
// private Y partner plus random extras, and every other X vertex connects
// only into the same deficient Y core, so König's bound caps the matching.
// This gives precise control of the matching number fraction.
func RankDeficient(nx, ny, targetCard int32, extraPerX int, seed int64) *bipartite.Graph {
	if targetCard > nx {
		targetCard = nx
	}
	if targetCard > ny {
		targetCard = ny
	}
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nx, ny)
	b.Reserve(int(nx) * (extraPerX + 1))
	for x := int32(0); x < nx; x++ {
		if x < targetCard {
			_ = b.AddEdge(x, x)
		}
		for e := 0; e < extraPerX; e++ {
			// All random edges land inside the Y core [0, targetCard),
			// so Y-core is a vertex cover of size targetCard.
			if targetCard > 0 {
				_ = b.AddEdge(x, int32(rng.Intn(int(targetCard))))
			}
		}
	}
	return b.Build()
}

// Banded generates a banded square matrix graph (diagonal plus band offsets),
// a kkt_power-ish structured scientific instance with perfect matching.
func Banded(n int32, band int, fillProb float64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(n) * (2*band + 1))
	for i := int32(0); i < n; i++ {
		_ = b.AddEdge(i, i)
		for d := 1; d <= band; d++ {
			if j := i - int32(d); j >= 0 && rng.Float64() < fillProb {
				_ = b.AddEdge(i, j)
			}
			if j := i + int32(d); j < n && rng.Float64() < fillProb {
				_ = b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// StripDiagonal returns a copy of g without the self edges (x, x). Matrix
// families whose diagonal is structurally zero — KKT saddle-point systems,
// graph adjacency matrices like road networks — are modeled this way; it
// also restores the initializer/exact-phase split those matrices exhibit
// (a structurally nonzero diagonal makes greedy initialization trivially
// optimal on banded instances).
func StripDiagonal(g *bipartite.Graph) *bipartite.Graph {
	b := bipartite.NewBuilder(g.NX(), g.NY())
	b.Reserve(int(g.NumEdges()))
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if x != y {
				_ = b.AddEdge(x, y)
			}
		}
	}
	return b.Build()
}

// Chain generates the length-n path graph x0-y0-x1-y1-…: edges (i, i) and
// (i+1, i). Its maximum matching is perfect (n); pre-matching (i+1, i) for
// all i leaves a single augmenting path that traverses the entire graph —
// the worst case for augmenting-path length that the tests and the
// distributed cost model use.
func Chain(n int32) *bipartite.Graph {
	b := bipartite.NewBuilder(n, n)
	b.Reserve(int(2 * n))
	for i := int32(0); i < n; i++ {
		_ = b.AddEdge(i, i)
		if i+1 < n {
			_ = b.AddEdge(i+1, i)
		}
	}
	return b.Build()
}
