package pushrelabel

import (
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestDefaults(t *testing.T) {
	o := Options{Threads: 1}.Defaults()
	if o.RelabelFreq != 2 || o.QueueLimit != 500 {
		t.Fatalf("serial defaults: %+v", o)
	}
	o = Options{Threads: 8}.Defaults()
	if o.RelabelFreq != 16 {
		t.Fatalf("parallel defaults: %+v", o)
	}
	o = Options{}.Defaults()
	if o.Threads < 1 {
		t.Fatalf("thread default: %+v", o)
	}
	o = Options{Threads: 2, RelabelFreq: 7, QueueLimit: 9}.Defaults()
	if o.RelabelFreq != 7 || o.QueueLimit != 9 {
		t.Fatalf("explicit values clobbered: %+v", o)
	}
}

func TestBasicInstances(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"path", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}), 3},
		{"star", bipartite.MustFromEdges(4, 1, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}), 1},
		{"crown", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: 0}, {X: 1, Y: 2}, {X: 2, Y: 0}, {X: 2, Y: 1}}), 3},
	}
	for _, c := range cases {
		for _, p := range []int{1, 4} {
			m := matching.New(c.g.NX(), c.g.NY())
			Run(c.g, m, Options{Threads: p})
			if m.Cardinality() != c.want {
				t.Fatalf("%s p=%d: %d, want %d", c.name, p, m.Cardinality(), c.want)
			}
			if err := matching.VerifyMaximum(c.g, m); err != nil {
				t.Fatalf("%s p=%d: %v", c.name, p, err)
			}
		}
	}
}

func TestMatchesHopcroftKarpSerial(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(110, 100, 420, seed)
		a := matchinit.KarpSipser(g, seed)
		b := a.Clone()
		Run(g, a, Options{Threads: 1})
		hk.Run(g, b)
		return a.Cardinality() == b.Cardinality() && matching.VerifyMaximum(g, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCorrectness(t *testing.T) {
	graphs := []*bipartite.Graph{
		gen.ER(400, 400, 2000, 1),
		gen.RMAT(9, 6, 0.57, 0.19, 0.19, 2),
		gen.Grid(18, 18),
		gen.RankDeficient(500, 500, 180, 3, 3),
	}
	for i, g := range graphs {
		ref := matching.New(g.NX(), g.NY())
		hk.Run(g, ref)
		for _, p := range []int{2, 4, 8} {
			m := matchinit.KarpSipser(g, int64(i))
			Run(g, m, Options{Threads: p})
			if m.Cardinality() != ref.Cardinality() {
				t.Fatalf("graph %d p=%d: %d, want %d", i, p, m.Cardinality(), ref.Cardinality())
			}
			if err := matching.VerifyMaximum(g, m); err != nil {
				t.Fatalf("graph %d p=%d: %v", i, p, err)
			}
		}
	}
}

func TestRelabelFrequencies(t *testing.T) {
	g := gen.ER(300, 300, 1200, 4)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	for _, freq := range []int{1, 2, 8, 64} {
		m := matching.New(g.NX(), g.NY())
		Run(g, m, Options{Threads: 1, RelabelFreq: freq})
		if m.Cardinality() != ref.Cardinality() {
			t.Fatalf("freq=%d: %d, want %d", freq, m.Cardinality(), ref.Cardinality())
		}
	}
}

func TestFromEmptyAndFromInitializer(t *testing.T) {
	g := gen.WebLike(8, 5, 0.3, 7)
	a := matching.New(g.NX(), g.NY())
	Run(g, a, Options{Threads: 2})
	b := matchinit.KarpSipser(g, 7)
	Run(g, b, Options{Threads: 2})
	if a.Cardinality() != b.Cardinality() {
		t.Fatalf("empty-start %d vs KS-start %d", a.Cardinality(), b.Cardinality())
	}
	if err := matching.VerifyMaximum(g, a); err != nil {
		t.Fatal(err)
	}
}

// TestUnmatchableVerticesDropped: rank-deficient instances leave many X
// vertices permanently unmatchable; PR must terminate and be exact.
func TestDeficientTermination(t *testing.T) {
	g := gen.RankDeficient(800, 800, 100, 2, 9)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m, Options{Threads: 4})
	if m.Cardinality() != 100 {
		t.Fatalf("cardinality %d, want 100 (%v)", m.Cardinality(), stats)
	}
}

func TestRectangularInstances(t *testing.T) {
	for _, c := range []struct{ nx, ny int32 }{{400, 40}, {40, 400}} {
		g := gen.ER(c.nx, c.ny, 1000, 8)
		ref := matching.New(g.NX(), g.NY())
		hk.Run(g, ref)
		for _, p := range []int{1, 4} {
			m := matching.New(g.NX(), g.NY())
			Run(g, m, Options{Threads: p})
			if m.Cardinality() != ref.Cardinality() {
				t.Fatalf("%dx%d p=%d: %d, want %d", c.nx, c.ny, p, m.Cardinality(), ref.Cardinality())
			}
		}
	}
}

// TestGlobalRelabelExactness: after a global relabel, every label is a
// valid lower bound — indirectly verified by exactness under a relabel
// frequency of 1 (relabel after every push).
func TestAggressiveRelabeling(t *testing.T) {
	g := gen.WebLike(8, 5, 0.3, 11)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	m := matching.New(g.NX(), g.NY())
	s := Run(g, m, Options{Threads: 1, RelabelFreq: 1})
	if m.Cardinality() != ref.Cardinality() {
		t.Fatalf("%d, want %d", m.Cardinality(), ref.Cardinality())
	}
	if s.Phases == 0 {
		t.Fatal("no global relabels counted")
	}
}

func TestStatsPopulatedPR(t *testing.T) {
	g := gen.ER(200, 200, 800, 12)
	m := matching.New(g.NX(), g.NY())
	s := Run(g, m, Options{Threads: 2})
	if s.Algorithm != "PR" || s.Threads != 2 {
		t.Fatalf("header: %+v", s)
	}
	if s.EdgesTraversed == 0 || s.AugPaths == 0 {
		t.Fatalf("accounting: %+v", s)
	}
}
