// Package pushrelabel implements the push-relabel (PR) baseline for
// bipartite cardinality matching (§V-A, after Langguth et al.): unit-flow
// push-relabel specialized to the matching network s→X→Y→t with the
// standard "double push" operation, FIFO active processing, periodic global
// relabeling, and a phase-synchronous shared-memory parallelization with
// per-Y locks.
//
// Labels are residual distances toward t: a free Y vertex has label 1, a
// matched Y vertex label d(mate)+1, an X vertex 1 + min over neighbor
// labels. A double push at an active (unmatched) X vertex x relabels x from
// its minimum-label neighbor ymin and pushes: if ymin is free it is matched
// to x, otherwise ymin's mate is stolen and reactivated. Labels only
// increase, which makes stale reads in the parallel variant benign
// under-estimates; admissibility is re-verified under the Y lock before a
// push commits.
package pushrelabel

import (
	"context"
	"sync/atomic"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

const none = matching.None

// Options tunes the PR algorithm with the knobs the paper reports (§V-A):
// queue limit 500; global relabel frequency 2 serial, 16 at full threads.
type Options struct {
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int

	// RelabelFreq k triggers a global relabel every ⌈n/k⌉ double pushes;
	// 0 picks the paper's setting (2 when serial, 16 otherwise).
	RelabelFreq int

	// QueueLimit caps the per-round work chunk a thread claims from the
	// active queue; 0 means the paper's 500.
	QueueLimit int

	// OnPhase, when non-nil, is invoked on the driver goroutine after every
	// global relabel (PR's phase analog; a consistent point for the mate
	// arrays) with the phase count and the current cardinality.
	OnPhase func(phase, cardinality int64)

	// Recorder, when non-nil, receives per-relabel counter deltas (edges,
	// double pushes, relabels) and one span per global relabel. Recording
	// happens on the driver goroutine at relabel barriers only; the nil
	// default is a no-op.
	Recorder *obs.Recorder

	// Sched supplies the workers for the parallel push rounds. Nil means
	// per-call goroutine fan-out; a shared *par.Pool bounds the total
	// parallelism of many concurrent runs.
	Sched par.Scheduler
}

// Defaults fills unset fields with the paper's parameters.
func (o Options) Defaults() Options {
	if o.Threads <= 0 {
		o.Threads = par.DefaultWorkers()
	}
	if o.RelabelFreq <= 0 {
		if o.Threads == 1 {
			o.RelabelFreq = 2
		} else {
			o.RelabelFreq = 16
		}
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 500
	}
	return o
}

// Run computes a maximum cardinality matching with push-relabel, updating m
// in place. A contained worker panic is re-raised in the caller; use RunCtx
// to receive it as an error instead.
func Run(g *bipartite.Graph, m *matching.Matching, opts Options) *matching.Stats {
	stats, err := RunCtx(context.Background(), g, m, opts)
	if err != nil {
		// Background is never cancelled: err is a contained worker panic,
		// and re-raising it is Run's documented contract.
		panic(err) //lint:ignore err-checked re-raising a contained worker panic is Run's documented contract
	}
	return stats
}

// RunCtx is Run under a cancellation context, checked between rounds of
// active-vertex processing (and, in the parallel variant, at block
// granularity within a round). Push-relabel keeps the mate arrays a valid
// matching after every double push — a push either matches a free Y or
// steals a mate, never decreasing cardinality — so an interrupted run
// returns a valid partial matching; the stats then have Complete=false and
// err is the context's error. A contained worker panic is returned as
// *par.PanicError.
func RunCtx(ctx context.Context, g *bipartite.Graph, m *matching.Matching, opts Options) (*matching.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.Defaults()
	stats := &matching.Stats{Algorithm: "PR", Threads: opts.Threads}
	stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	e := &prState{g: g, m: m, opts: opts, ctx: ctx, stats: stats,
		sched: par.SchedulerOrSpawn(opts.Sched)}
	e.rec = opts.Recorder
	e.mEdges = e.rec.Counter("graftmatch_pr_edges_traversed_total", "edges examined by PR scans and global relabels")
	e.mPushes = e.rec.Counter("graftmatch_pr_double_pushes_total", "double-push operations committed")
	e.mPhases = e.rec.Counter("graftmatch_pr_relabels_total", "global relabels (PR's phase analog)")
	e.init()
	if opts.Threads == 1 {
		e.runSerial()
	} else {
		e.runParallel()
	}
	e.exportDeltas() // publish the tail since the last relabel barrier

	stats.Runtime = time.Since(start)
	stats.FinalCardinality = m.Cardinality()
	stats.Complete = e.err == nil
	return stats, e.err
}

type prState struct {
	g    *bipartite.Graph
	m    *matching.Matching
	opts Options
	ctx  context.Context
	err  error

	// sched supplies the workers of the push rounds (never nil; the
	// spawn-per-call default when Options.Sched is unset).
	sched par.Scheduler

	dX, dY []int32
	limit  int32 // labels at or above limit mean "cannot reach a free Y"

	active []int32 // FIFO of active (unmatched, label<limit) X vertices
	next   []int32

	lockY []int32 // per-Y spinlocks for the parallel variant

	pushes        int64 // double pushes since the last global relabel
	relabelPeriod int64

	stats *matching.Stats

	// Observability handles (nil-safe no-ops without a Recorder) and the
	// already-exported cuts of the cumulative stats, so each relabel
	// barrier publishes only its delta.
	rec                 *obs.Recorder
	mEdges              *obs.Counter
	mPushes             *obs.Counter
	mPhases             *obs.Counter
	expEdges, expPushes int64
}

// exportDeltas publishes counter growth since the last export; called at
// relabel barriers and once at run end, so live metrics lag the engine by
// at most one phase.
func (e *prState) exportDeltas() {
	e.mEdges.Add(0, e.stats.EdgesTraversed-e.expEdges)
	e.expEdges = e.stats.EdgesTraversed
	e.mPushes.Add(0, e.stats.AugPaths-e.expPushes)
	e.expPushes = e.stats.AugPaths
}

func (e *prState) init() {
	nx, ny := int(e.g.NX()), int(e.g.NY())
	e.dX = make([]int32, nx)
	e.dY = make([]int32, ny)
	e.limit = int32(nx+ny) + 2
	e.lockY = make([]int32, ny)
	n := int64(nx + ny)
	e.relabelPeriod = n / int64(e.opts.RelabelFreq)
	if e.relabelPeriod < 1 {
		e.relabelPeriod = 1
	}
	e.globalRelabel()
	e.active = e.active[:0]
	for x := int32(0); x < int32(nx); x++ {
		if e.m.MateX[x] == none && e.dX[x] < e.limit {
			e.active = append(e.active, x)
		}
	}
}

// globalRelabel recomputes exact residual distances by a backward
// alternating BFS from the free Y vertices. Unreached vertices get the
// limit label. Runs at a barrier (no concurrent pushes).
func (e *prState) globalRelabel() {
	nx, ny := int(e.g.NX()), int(e.g.NY())
	for i := 0; i < nx; i++ {
		e.dX[i] = e.limit
	}
	frontier := make([]int32, 0, ny)
	for y := int32(0); y < int32(ny); y++ {
		if e.m.MateY[y] == none {
			e.dY[y] = 1
			frontier = append(frontier, y)
		} else {
			e.dY[y] = e.limit
		}
	}
	// Level-synchronous: Y at distance d settles X neighbors at d+1; a
	// matched X at d+1 settles its mate Y at d+2.
	nextF := make([]int32, 0, ny)
	for len(frontier) > 0 {
		nextF = nextF[:0]
		for _, y := range frontier {
			nbr := e.g.NbrY(y)
			e.stats.EdgesTraversed += int64(len(nbr))
			for _, x := range nbr {
				if e.dX[x] != e.limit {
					continue
				}
				e.dX[x] = e.dY[y] + 1
				if my := e.m.MateX[x]; my != none && e.dY[my] == e.limit {
					e.dY[my] = e.dX[x] + 1
					nextF = append(nextF, my)
				}
			}
		}
		frontier, nextF = nextF, frontier
	}
}

// scanMin returns x's neighbor with minimum label and that label.
func (e *prState) scanMin(x int32) (int32, int32) {
	ymin, dmin := none, e.limit
	nbr := e.g.NbrX(x)
	for _, y := range nbr {
		if d := e.dY[y]; d < dmin {
			dmin = d
			ymin = y
		}
	}
	return ymin, dmin
}

func (e *prState) runSerial() {
	mateX, mateY := e.m.MateX, e.m.MateY
	for {
		if e.err = e.ctx.Err(); e.err != nil {
			return // round boundary: the matching is consistent here
		}
		if len(e.active) == 0 {
			return
		}
		e.next = e.next[:0]
		for _, x := range e.active {
			// x may have been matched since being queued only in the
			// parallel variant; serially, queued x is always unmatched.
			for mateX[x] == none {
				if e.pushes >= e.relabelPeriod {
					e.pushes = 0
					t := time.Now()
					e.globalRelabel()
					e.stats.Phases++ // count global relabels as phases
					card := e.m.Cardinality()
					e.mPhases.Add(0, 1)
					e.exportDeltas()
					e.rec.Span("pr", "relabel", t, time.Since(t), card)
					e.rec.PhaseDone("PR", e.stats.Phases, card)
					if e.opts.OnPhase != nil {
						e.opts.OnPhase(e.stats.Phases, card)
					}
					if e.dX[x] >= e.limit {
						break
					}
				}
				ymin, dmin := e.scanMin(x)
				e.stats.EdgesTraversed += e.g.DegX(x)
				if dmin >= e.limit {
					e.dX[x] = e.limit // x can never be matched
					break
				}
				e.dX[x] = dmin + 1
				e.pushes++
				old := mateY[ymin]
				mateY[ymin] = x
				mateX[x] = ymin
				e.dY[ymin] = e.dX[x] + 1
				if old != none {
					mateX[old] = none
					e.next = append(e.next, old)
				}
				e.stats.AugPaths++ // count double pushes as augment ops
				break
			}
			if mateX[x] == none && e.dX[x] < e.limit {
				e.next = append(e.next, x)
			}
		}
		e.active, e.next = e.next, e.active
	}
}

func (e *prState) runParallel() {
	p := e.opts.Threads
	mateX, mateY := e.m.MateX, e.m.MateY
	var pushCount atomic.Int64
	edges := par.NewCounter(p)
	pushOps := par.NewCounter(p)

	// Round-invariant scratch and parallel body, hoisted out of the round
	// loop: the per-worker activation lists keep their capacity across
	// rounds, and the closure is allocated once instead of per round.
	nextLocal := make([][]int32, p)
	grain := e.opts.QueueLimit
	if grain > 64 {
		grain = 64
	}
	// Queue uniqueness invariant: every x appears in the round's active
	// queue at most once, its fate is decided exactly once by the
	// worker that owns it (matched, dead, or — never — requeued by the
	// owner), and a stolen mate is requeued exactly once by the thief.
	// This prevents two workers from double-pushing the same x.
	// Every committed push leaves the mate arrays a valid matching, so
	// a cancelled round (blocks stop being claimed) is safe to abandon.
	pushRound := func(w int, lo, hi int) {
		for i := lo; i < hi; i++ {
			x := e.active[i]
		retry:
			if atomic.LoadInt32(&mateX[x]) != none {
				continue // matched then stolen races are handled by the thief
			}
			// Scan with possibly stale labels (monotone ⇒ stale is an
			// underestimate, so the relabel below stays valid).
			ymin, dmin := none, e.limit
			nbr := e.g.NbrX(x)
			edges.Add(w, int64(len(nbr)))
			for _, y := range nbr {
				if d := atomic.LoadInt32(&e.dY[y]); d < dmin {
					dmin = d
					ymin = y
				}
			}
			if dmin >= e.limit {
				atomic.StoreInt32(&e.dX[x], e.limit)
				continue
			}
			// Commit under ymin's lock, verifying the label we based
			// admissibility on has not increased.
			e.lock(ymin)
			if atomic.LoadInt32(&e.dY[ymin]) != dmin {
				e.unlock(ymin)
				goto retry
			}
			atomic.StoreInt32(&e.dX[x], dmin+1)
			old := mateY[ymin]
			mateY[ymin] = x
			atomic.StoreInt32(&mateX[x], ymin)
			atomic.StoreInt32(&e.dY[ymin], dmin+2)
			e.unlock(ymin)
			pushOps.Add(w, 1)
			if old != none {
				atomic.StoreInt32(&mateX[old], none)
				nextLocal[w] = append(nextLocal[w], old)
			}
			pushCount.Add(1)
		}
	}

	for {
		if e.err = e.ctx.Err(); e.err != nil {
			break // round boundary: the matching is consistent here
		}
		if len(e.active) == 0 {
			break
		}
		// Collect next-round activations per worker, then merge.
		for w := range nextLocal {
			nextLocal[w] = nextLocal[w][:0]
		}
		if e.err = e.sched.ForDynamicCtx(e.ctx, p, len(e.active), grain, pushRound); e.err != nil {
			break
		}

		e.next = e.next[:0]
		for _, local := range nextLocal {
			for _, x := range local {
				if mateX[x] == none && e.dX[x] < e.limit {
					e.next = append(e.next, x)
				}
			}
		}
		e.active, e.next = e.next, e.active

		if pushCount.Load() >= e.relabelPeriod {
			pushCount.Store(0)
			t := time.Now()
			e.globalRelabel()
			e.stats.Phases++
			// Fold the round counters at this barrier (workers joined), so
			// the exported deltas cover everything up to this relabel.
			e.stats.EdgesTraversed += edges.Sum()
			e.stats.AugPaths += pushOps.Sum()
			edges.Reset()
			pushOps.Reset()
			card := e.m.Cardinality()
			e.mPhases.Add(0, 1)
			e.exportDeltas()
			e.rec.Span("pr", "relabel", t, time.Since(t), card)
			e.rec.PhaseDone("PR", e.stats.Phases, card)
			if e.opts.OnPhase != nil {
				e.opts.OnPhase(e.stats.Phases, card)
			}
			// Re-filter actives under fresh labels.
			w := 0
			for _, x := range e.active {
				if e.dX[x] < e.limit {
					e.active[w] = x
					w++
				}
			}
			e.active = e.active[:w]
		}
	}
	e.stats.EdgesTraversed += edges.Sum()
	e.stats.AugPaths += pushOps.Sum()
}

func (e *prState) lock(y int32) {
	for !atomic.CompareAndSwapInt32(&e.lockY[y], 0, 1) {
	}
}

func (e *prState) unlock(y int32) {
	atomic.StoreInt32(&e.lockY[y], 0)
}
