// Package checkpoint persists matching run state as crash-safe binary
// snapshots, the durability layer under the run supervisor. A snapshot
// captures everything needed to restart a killed run without losing matched
// edges: the mate arrays (always a valid partial matching at a phase
// boundary), a fingerprint of the graph they were computed on, the engine
// that produced them, and cumulative run statistics.
//
// Snapshots are written with temp-file + atomic rename, so a crash mid-write
// can never destroy an older snapshot, and a reader never observes a partial
// file under a .ckpt name. Every file carries a magic number, a format
// version, and a trailing CRC32 over the entire contents; truncated,
// bit-flipped, or foreign files are rejected with a *CorruptError, and
// snapshots of a different graph with a *MismatchError, so LoadLatest can
// fall back to the newest snapshot that is still intact.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"time"

	"graftmatch/internal/bipartite"
)

// Version is the snapshot format version this package writes and reads.
const Version = 1

// magic identifies a graftmatch checkpoint file.
var magic = [4]byte{'G', 'M', 'C', 'K'}

// maxEngineName bounds the engine-id string so a corrupt length field cannot
// drive a huge allocation before the CRC check would catch it.
const maxEngineName = 256

// ErrNoSnapshot is returned by LoadLatest when the directory holds no
// snapshot files at all (as opposed to holding only corrupt ones).
var ErrNoSnapshot = errors.New("checkpoint: no snapshot found")

// CorruptError reports a snapshot file that failed structural validation:
// truncated, bit-flipped (CRC mismatch), wrong magic or version, or
// internally inconsistent mate arrays.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s: corrupt snapshot: %s", e.Path, e.Reason)
}

// MismatchError reports a structurally valid snapshot that was taken on a
// different graph than the one being restored.
type MismatchError struct {
	Path      string
	Want, Got Fingerprint
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s: snapshot is for a different graph (want %v, got %v)",
		e.Path, e.Want, e.Got)
}

// Fingerprint identifies the graph a snapshot belongs to: the dimensions,
// the edge count, and an FNV-1a hash of the X-side CSR (offsets and
// adjacency). Restoring a snapshot onto a graph with a different fingerprint
// would silently produce an invalid matching, so loads reject it.
type Fingerprint struct {
	NX, NY  int32
	NNZ     int64
	AdjHash uint64
}

// String renders the fingerprint compactly for error messages.
func (f Fingerprint) String() string {
	return fmt.Sprintf("{%dx%d nnz=%d adj=%016x}", f.NX, f.NY, f.NNZ, f.AdjHash)
}

// GraphFingerprint computes the fingerprint of g.
func GraphFingerprint(g *bipartite.Graph) Fingerprint {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range g.XPtr() {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		_, _ = h.Write(buf[:]) // hash.Hash.Write never fails
	}
	for _, y := range g.XNbr() {
		binary.LittleEndian.PutUint32(buf[:4], uint32(y))
		_, _ = h.Write(buf[:4])
	}
	return Fingerprint{NX: g.NX(), NY: g.NY(), NNZ: g.NumEdges(), AdjHash: h.Sum64()}
}

// CumulativeStats carries the run counters worth preserving across a
// restart. Mid-run snapshots fill what the phase hook can observe (phases,
// initial cardinality, elapsed time); the final snapshot of a completed run
// carries the engine's full counters.
type CumulativeStats struct {
	Phases             int64
	EdgesTraversed     int64
	AugPaths           int64
	AugPathLen         int64
	InitialCardinality int64
	Grafts             int64
	Rebuilds           int64
	Runtime            time.Duration
}

// Snapshot is one checkpoint: a valid (possibly partial) matching of the
// fingerprinted graph plus the run position it was taken at.
type Snapshot struct {
	Fingerprint Fingerprint
	Engine      string // algorithm id, e.g. "MS-BFS-Graft"
	Phase       int64  // phase counter of the producing run
	Cardinality int64  // |M| of the mate arrays
	Stats       CumulativeStats
	MateX       []int32
	MateY       []int32
}

// Encode serializes s into the on-disk format (including trailer CRC).
func Encode(s *Snapshot) ([]byte, error) {
	if len(s.Engine) > maxEngineName {
		return nil, fmt.Errorf("checkpoint: engine name %q exceeds %d bytes", s.Engine, maxEngineName)
	}
	if int32(len(s.MateX)) != s.Fingerprint.NX || int32(len(s.MateY)) != s.Fingerprint.NY {
		return nil, fmt.Errorf("checkpoint: mate array lengths (%d,%d) do not match fingerprint (%d,%d)",
			len(s.MateX), len(s.MateY), s.Fingerprint.NX, s.Fingerprint.NY)
	}
	size := 4 + 4 + // magic, version
		4 + 4 + 8 + 8 + // fingerprint
		4 + len(s.Engine) + // engine
		8 + 8 + // phase, cardinality
		8*8 + // stats
		4 + 4*len(s.MateX) +
		4 + 4*len(s.MateY) +
		4 // crc
	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Fingerprint.NX))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Fingerprint.NY))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Fingerprint.NNZ))
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint.AdjHash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Engine)))
	buf = append(buf, s.Engine...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Phase))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Cardinality))
	for _, v := range []int64{
		s.Stats.Phases, s.Stats.EdgesTraversed, s.Stats.AugPaths, s.Stats.AugPathLen,
		s.Stats.InitialCardinality, s.Stats.Grafts, s.Stats.Rebuilds, int64(s.Stats.Runtime),
	} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.MateX)))
	for _, v := range s.MateX {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.MateY)))
	for _, v := range s.MateY {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// decoder is a bounds-checked cursor over an encoded snapshot.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.err = fmt.Errorf("truncated at offset %d (need %d more bytes)", d.off, n)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Decode parses and validates an encoded snapshot. Any structural problem —
// truncation, CRC mismatch, out-of-range or asymmetric mates — yields a
// *CorruptError (with Path unset; Load fills it in).
func Decode(data []byte) (*Snapshot, error) {
	corrupt := func(format string, args ...any) (*Snapshot, error) {
		return nil, &CorruptError{Reason: fmt.Sprintf(format, args...)}
	}
	if len(data) < 12 {
		return corrupt("file is %d bytes, smaller than any snapshot", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return corrupt("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return corrupt("unsupported format version %d (want %d)", v, Version)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return corrupt("CRC mismatch: computed %08x, stored %08x", got, want)
	}

	d := &decoder{data: body, off: 8}
	s := &Snapshot{}
	s.Fingerprint.NX = int32(d.u32())
	s.Fingerprint.NY = int32(d.u32())
	s.Fingerprint.NNZ = int64(d.u64())
	s.Fingerprint.AdjHash = d.u64()
	nameLen := d.u32()
	if d.err == nil && nameLen > maxEngineName {
		return corrupt("engine name length %d exceeds %d", nameLen, maxEngineName)
	}
	s.Engine = string(d.take(int(nameLen)))
	s.Phase = int64(d.u64())
	s.Cardinality = int64(d.u64())
	for _, p := range []*int64{
		&s.Stats.Phases, &s.Stats.EdgesTraversed, &s.Stats.AugPaths, &s.Stats.AugPathLen,
		&s.Stats.InitialCardinality, &s.Stats.Grafts, &s.Stats.Rebuilds,
	} {
		*p = int64(d.u64())
	}
	s.Stats.Runtime = time.Duration(d.u64())
	if s.Fingerprint.NX < 0 || s.Fingerprint.NY < 0 || s.Fingerprint.NNZ < 0 {
		return corrupt("negative dimensions in fingerprint %v", s.Fingerprint)
	}
	if n := d.u32(); d.err == nil && int32(n) != s.Fingerprint.NX {
		return corrupt("mateX length %d does not match fingerprint nx %d", n, s.Fingerprint.NX)
	}
	s.MateX = d.mates(int(s.Fingerprint.NX))
	if n := d.u32(); d.err == nil && int32(n) != s.Fingerprint.NY {
		return corrupt("mateY length %d does not match fingerprint ny %d", n, s.Fingerprint.NY)
	}
	s.MateY = d.mates(int(s.Fingerprint.NY))
	if d.err != nil {
		return corrupt("%v", d.err)
	}
	if d.off != len(body) {
		return corrupt("%d bytes of trailing garbage", len(body)-d.off)
	}
	if err := validateMates(s); err != nil {
		return corrupt("%v", err)
	}
	return s, nil
}

// mates reads n int32 mate entries.
func (d *decoder) mates(n int) []int32 {
	if d.err != nil || n < 0 {
		return nil
	}
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// validateMates checks range, symmetry, and the recorded cardinality —
// everything a matching invariant requires short of edge membership, which
// needs the graph and is the caller's job (graftmatch.VerifyMatching).
func validateMates(s *Snapshot) error {
	var card int64
	for x, y := range s.MateX {
		if y == -1 {
			continue
		}
		if y < 0 || int(y) >= len(s.MateY) {
			return fmt.Errorf("mateX[%d]=%d out of range", x, y)
		}
		if s.MateY[y] != int32(x) {
			return fmt.Errorf("asymmetric mates: mateX[%d]=%d but mateY[%d]=%d", x, y, y, s.MateY[y])
		}
		card++
	}
	for y, x := range s.MateY {
		if x == -1 {
			continue
		}
		if x < 0 || int(x) >= len(s.MateX) {
			return fmt.Errorf("mateY[%d]=%d out of range", y, x)
		}
		if s.MateX[x] != int32(y) {
			return fmt.Errorf("asymmetric mates: mateY[%d]=%d but mateX[%d]=%d", y, x, x, s.MateX[x])
		}
	}
	if card != s.Cardinality {
		return fmt.Errorf("recorded cardinality %d but mate arrays hold %d matches", s.Cardinality, card)
	}
	return nil
}

// Save atomically writes s into dir (created if missing) and returns the
// snapshot's path. The bytes go to a hidden temp file first, are fsynced,
// and only then renamed to their final *.ckpt name, so a crash at any point
// leaves either the complete new snapshot or no new file — never a torn one.
func Save(dir string, s *Snapshot) (string, error) {
	path, _, err := SaveMeasured(dir, s)
	return path, err
}

// SaveIO reports the I/O cost of one snapshot write, for observability:
// the encoded size and how long the durability fsync took.
type SaveIO struct {
	Bytes int64
	Fsync time.Duration
}

// SaveMeasured is Save with the write's I/O cost reported alongside the
// path. On error the SaveIO is zero.
func SaveMeasured(dir string, s *Snapshot) (string, SaveIO, error) {
	data, err := Encode(s)
	if err != nil {
		return "", SaveIO{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", SaveIO{}, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.CreateTemp(dir, ".ck-*.tmp")
	if err != nil {
		return "", SaveIO{}, fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) (string, SaveIO, error) {
		f.Close()
		os.Remove(tmp)
		return "", SaveIO{}, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	fsyncStart := time.Now()
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	io := SaveIO{Bytes: int64(len(data)), Fsync: time.Since(fsyncStart)}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", SaveIO{}, fmt.Errorf("checkpoint: %w", err)
	}
	// UnixNano in the name makes names collision-free and sortable by
	// creation order, which Prune relies on.
	final := filepath.Join(dir, fmt.Sprintf("ck-%020d.ckpt", time.Now().UnixNano()))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", SaveIO{}, fmt.Errorf("checkpoint: %w", err)
	}
	return final, io, nil
}

// Load reads and validates one snapshot file. Corruption of any kind is a
// *CorruptError carrying the path; I/O failures are returned as-is.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return s, nil
}

// LoadLatest returns the best valid snapshot in dir whose fingerprint
// matches want, preferring the highest cardinality (progress is monotonic
// across restarts, so the largest matching is the newest state), breaking
// ties by file name (creation order). Corrupt or mismatched files are
// skipped — that is the fall-back-to-newest-valid behavior — but if the
// directory holds snapshot files and none survives validation, the last
// rejection is returned so callers can distinguish "nothing to resume"
// (ErrNoSnapshot) from "everything to resume is damaged".
func LoadLatest(dir string, want Fingerprint) (*Snapshot, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", ErrNoSnapshot
		}
		return nil, "", fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".ckpt" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, "", ErrNoSnapshot
	}
	sort.Strings(names) // creation order (UnixNano names)
	var (
		best     *Snapshot
		bestPath string
		lastErr  error
	)
	for _, name := range names {
		path := filepath.Join(dir, name)
		s, err := Load(path)
		if err != nil {
			lastErr = err
			continue
		}
		if s.Fingerprint != want {
			lastErr = &MismatchError{Path: path, Want: want, Got: s.Fingerprint}
			continue
		}
		if best == nil || s.Cardinality >= best.Cardinality {
			best, bestPath = s, path
		}
	}
	if best == nil {
		return nil, "", lastErr
	}
	return best, bestPath, nil
}

// Prune removes all but the newest keep snapshots from dir (by creation
// order); keep < 1 is treated as 1. Temp files older than a minute are
// swept too — they are debris from a crash mid-write.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	var firstErr error
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > time.Minute {
				if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		if filepath.Ext(name) == ".ckpt" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for len(names) > keep {
		if err := os.Remove(filepath.Join(dir, names[0])); err != nil && firstErr == nil {
			firstErr = err
		}
		names = names[1:]
	}
	return firstErr
}
