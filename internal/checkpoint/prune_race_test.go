package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestPruneRacesConcurrentSave pins the retention/durability contract under
// concurrency: Prune running in a tight loop while several goroutines Save
// must never make a Save fail, never leave a torn snapshot on disk, and a
// concurrent reader must never observe corruption — the worst a reader may
// see is a transient not-found when retention removes the files it listed.
// The in-progress temp file is protected by the one-minute staleness guard;
// a fresh .tmp is by definition a write in flight, not crash debris.
//
// Run with -race: the interesting failures here are ordering ones.
func TestPruneRacesConcurrentSave(t *testing.T) {
	dir := t.TempDir()
	snap := testSnapshot(t)

	// One committed snapshot up front so the reader always has something
	// to find (retention keeps at least `keep` newest).
	if _, err := Save(dir, snap); err != nil {
		t.Fatal(err)
	}

	const (
		savers   = 4
		perSaver = 25
		keep     = 3
	)
	var (
		wg   sync.WaitGroup
		done = make(chan struct{})
		errs = make(chan error, savers*perSaver+1)
	)

	for i := 0; i < savers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSaver; j++ {
				if _, err := Save(dir, snap); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// The pruner: retention sweeping as fast as it can list the directory.
	var pruneWG sync.WaitGroup
	pruneWG.Add(1)
	go func() {
		defer pruneWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := Prune(dir, keep); err != nil {
				errs <- err
				return
			}
		}
	}()

	// The reader: LoadLatest concurrently. Missing files are acceptable
	// (retention may delete everything a directory listing saw before the
	// reads happen); torn or mismatched snapshots never are — Save's
	// write-fsync-rename discipline must hold even while Prune deletes.
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s, _, err := LoadLatest(dir, snap.Fingerprint)
			if err != nil {
				var corrupt *CorruptError
				var mismatch *MismatchError
				if errors.As(err, &corrupt) || errors.As(err, &mismatch) {
					errs <- err
					return
				}
				continue // transient: files pruned between list and read
			}
			if s.Cardinality != snap.Cardinality || len(s.MateX) != len(snap.MateX) {
				errs <- errors.New("reader observed a snapshot that was never saved")
				return
			}
		}
	}()

	wg.Wait()
	close(done)
	pruneWG.Wait()
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("under concurrent prune: %v", err)
	}

	// After the dust settles: retention holds, no write debris remains,
	// and every surviving snapshot is intact end to end.
	if err := Prune(dir, keep); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, tmps int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".ckpt":
			ckpts++
			s, err := Load(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Errorf("surviving snapshot %s is torn: %v", e.Name(), err)
			} else if s.Fingerprint != snap.Fingerprint {
				t.Errorf("surviving snapshot %s has wrong fingerprint", e.Name())
			}
		case ".tmp":
			tmps++
		}
	}
	if ckpts == 0 || ckpts > keep {
		t.Errorf("retention after race: %d snapshots on disk, want 1..%d", ckpts, keep)
	}
	if tmps != 0 {
		t.Errorf("%d temp files left behind; every Save completed, so none should remain", tmps)
	}
	if _, _, err := LoadLatest(dir, snap.Fingerprint); err != nil {
		t.Errorf("LoadLatest after race: %v", err)
	}
}
