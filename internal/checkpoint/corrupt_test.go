package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// checkOutcome asserts the crash-consistency contract for one damaged
// variant of an encoded snapshot: Decode either returns a structurally valid
// snapshot (range-checked, symmetric, cardinality-consistent — enforced by
// Decode itself) or a typed *CorruptError. It must never panic and never
// return an undetected-invalid snapshot; validateMates re-runs here as an
// independent witness.
func checkOutcome(t *testing.T, label string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Decode panicked: %v", label, r)
		}
	}()
	s, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got untyped error %v, want *CorruptError", label, err)
		}
		return
	}
	if err := validateMates(s); err != nil {
		t.Fatalf("%s: Decode accepted an invalid matching: %v", label, err)
	}
}

// TestCorruptionTruncateEveryOffset feeds Decode every prefix of a valid
// snapshot: all must be rejected (no prefix can pass the trailing CRC).
func TestCorruptionTruncateEveryOffset(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		checkOutcome(t, "truncate", data[:n])
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", n, len(data))
		}
	}
}

// TestCorruptionBitFlipEveryOffset flips each bit of every byte of a valid
// snapshot. CRC32 detects every single-bit error, so each variant must be
// rejected with a typed error — and must never panic or yield an invalid
// matching.
func TestCorruptionBitFlipEveryOffset(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(data))
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, data)
			mut[off] ^= 1 << bit
			checkOutcome(t, "bitflip", mut)
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d was accepted", off, bit)
			}
		}
	}
}

// TestCorruptionGarbage drives Decode over byte soup: empty input, random
// junk, short files, and magic-prefixed junk.
func TestCorruptionGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x47},
		[]byte("GMCK"),
		[]byte("GMCK\x01\x00\x00\x00"),
		[]byte("not a checkpoint at all, just text"),
		make([]byte, 4096), // zeros
	}
	for i, data := range cases {
		checkOutcome(t, "garbage", data)
		if _, err := Decode(data); err == nil {
			t.Fatalf("garbage case %d was accepted", i)
		}
	}
}

// TestCorruptionOnDisk exercises the same contract through the file layer:
// a truncated file on disk loads as *CorruptError with the path filled in,
// and LoadLatest still finds the surviving good snapshot next to it.
func TestCorruptionOnDisk(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t)
	goodPath, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "ck-99999999999999999999.ckpt")
	if err := os.WriteFile(badPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := Load(badPath); !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	} else if ce.Path != badPath {
		t.Fatalf("CorruptError.Path = %q, want %q", ce.Path, badPath)
	}
	got, path, err := LoadLatest(dir, s.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if path != goodPath || got.Cardinality != s.Cardinality {
		t.Fatalf("LoadLatest = (%s, %d), want (%s, %d)", path, got.Cardinality, goodPath, s.Cardinality)
	}
}
