package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
)

// testSnapshot builds a snapshot of a real (partial) matching on a small
// generated graph, so the mate arrays have genuine structure.
func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	g := gen.ER(40, 40, 160, 3)
	m := matching.New(g.NX(), g.NY())
	// Greedily match a few vertices to get a valid partial matching.
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if m.MateY[y] == -1 {
				m.Match(x, y)
				break
			}
		}
	}
	return &Snapshot{
		Fingerprint: GraphFingerprint(g),
		Engine:      "MS-BFS-Graft",
		Phase:       7,
		Cardinality: m.Cardinality(),
		Stats: CumulativeStats{
			Phases:             7,
			EdgesTraversed:     1234,
			AugPaths:           9,
			AugPathLen:         31,
			InitialCardinality: 5,
			Grafts:             2,
			Rebuilds:           1,
			Runtime:            42 * time.Millisecond,
		},
		MateX: m.MateX,
		MateY: m.MateY,
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := testSnapshot(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != s.Fingerprint || got.Engine != s.Engine ||
		got.Phase != s.Phase || got.Cardinality != s.Cardinality || got.Stats != s.Stats {
		t.Fatalf("roundtrip header mismatch:\n got %+v\nwant %+v", got, s)
	}
	for i := range s.MateX {
		if got.MateX[i] != s.MateX[i] {
			t.Fatalf("mateX[%d] = %d, want %d", i, got.MateX[i], s.MateX[i])
		}
	}
	for i := range s.MateY {
		if got.MateY[i] != s.MateY[i] {
			t.Fatalf("mateY[%d] = %d, want %d", i, got.MateY[i], s.MateY[i])
		}
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	s := testSnapshot(t)
	long := *s
	long.Engine = strings.Repeat("x", maxEngineName+1)
	if _, err := Encode(&long); err == nil {
		t.Error("over-long engine name: want error")
	}
	short := *s
	short.MateX = s.MateX[:len(s.MateX)-1]
	if _, err := Encode(&short); err == nil {
		t.Error("mate/fingerprint length mismatch: want error")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t)
	path, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Ext(path) != ".ckpt" {
		t.Fatalf("unexpected snapshot name %q", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality != s.Cardinality {
		t.Fatalf("cardinality %d, want %d", got.Cardinality, s.Cardinality)
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %s left after successful save", e.Name())
		}
	}
}

func TestLoadLatestPrefersHighestCardinality(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t)

	low := *s
	low.MateX = append([]int32(nil), s.MateX...)
	low.MateY = append([]int32(nil), s.MateY...)
	// Unmatch one pair to lower the cardinality.
	for x, y := range low.MateX {
		if y != -1 {
			low.MateX[x] = -1
			low.MateY[y] = -1
			break
		}
	}
	low.Cardinality = s.Cardinality - 1
	low.Phase = 99 // higher phase must not outrank higher cardinality

	if _, err := Save(dir, &low); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, s); err != nil {
		t.Fatal(err)
	}
	got, path, err := LoadLatest(dir, s.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality != s.Cardinality {
		t.Fatalf("LoadLatest picked cardinality %d from %s, want %d", got.Cardinality, path, s.Cardinality)
	}
}

func TestLoadLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t)
	goodPath, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	// A later, corrupt snapshot must be skipped in favor of the older good one.
	time.Sleep(time.Millisecond) // distinct UnixNano name
	badPath, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, err := LoadLatest(dir, s.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if path != goodPath {
		t.Fatalf("LoadLatest returned %s, want the intact %s", path, goodPath)
	}
	if got.Cardinality != s.Cardinality {
		t.Fatalf("cardinality %d, want %d", got.Cardinality, s.Cardinality)
	}
}

func TestLoadLatestErrors(t *testing.T) {
	s := testSnapshot(t)

	// Missing or empty directory: ErrNoSnapshot.
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "nope"), s.Fingerprint); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing dir: got %v, want ErrNoSnapshot", err)
	}
	if _, _, err := LoadLatest(t.TempDir(), s.Fingerprint); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: got %v, want ErrNoSnapshot", err)
	}

	// Only corrupt snapshots: the corruption surfaces, not ErrNoSnapshot.
	dir := t.TempDir()
	path, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := LoadLatest(dir, s.Fingerprint); !errors.As(err, &ce) {
		t.Fatalf("all-corrupt dir: got %v, want *CorruptError", err)
	}

	// Only mismatched snapshots: typed mismatch error.
	dir2 := t.TempDir()
	if _, err := Save(dir2, s); err != nil {
		t.Fatal(err)
	}
	other := s.Fingerprint
	other.AdjHash ^= 1
	var me *MismatchError
	if _, _, err := LoadLatest(dir2, other); !errors.As(err, &me) {
		t.Fatalf("mismatched dir: got %v, want *MismatchError", err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t)
	for i := 0; i < 6; i++ {
		if _, err := Save(dir, s); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// Plant stale temp debris; Prune must sweep it.
	stale := filepath.Join(dir, ".ck-stale.tmp")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, tmps int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".ckpt":
			ckpts++
		case ".tmp":
			tmps++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d snapshots after Prune(2), want 2", ckpts)
	}
	if tmps != 0 {
		t.Fatalf("stale temp file survived Prune")
	}
	// The survivors must still be loadable.
	if _, _, err := LoadLatest(dir, s.Fingerprint); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g1 := gen.ER(30, 30, 100, 1)
	g2 := gen.ER(30, 30, 100, 2) // same shape, different edges
	if GraphFingerprint(g1) == GraphFingerprint(g2) {
		t.Fatal("different graphs share a fingerprint")
	}
	if GraphFingerprint(g1) != GraphFingerprint(g1) {
		t.Fatal("fingerprint is not deterministic")
	}
}
