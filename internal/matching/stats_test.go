package matching

import (
	"strings"
	"testing"
	"time"
)

func TestStepString(t *testing.T) {
	names := map[Step]string{
		StepTopDown:    "Top-Down",
		StepBottomUp:   "Bottom-Up",
		StepAugment:    "Augment",
		StepGraft:      "Tree-Grafting",
		StepStatistics: "Statistics",
	}
	for step, want := range names {
		if got := step.String(); got != want {
			t.Errorf("Step(%d).String() = %q, want %q", step, got, want)
		}
	}
	if !strings.HasPrefix(Step(99).String(), "Step(") {
		t.Error("unknown step name")
	}
}

func TestAvgAugPathLen(t *testing.T) {
	s := &Stats{}
	if s.AvgAugPathLen() != 0 {
		t.Fatal("zero paths must give zero average")
	}
	s.AugPaths = 4
	s.AugPathLen = 20
	if s.AvgAugPathLen() != 5 {
		t.Fatalf("avg = %f", s.AvgAugPathLen())
	}
}

func TestMTEPS(t *testing.T) {
	s := &Stats{EdgesTraversed: 2_000_000, Runtime: time.Second}
	if got := s.MTEPS(); got != 2.0 {
		t.Fatalf("MTEPS = %f, want 2", got)
	}
	zero := &Stats{EdgesTraversed: 100}
	if zero.MTEPS() != 0 {
		t.Fatal("zero runtime must give zero MTEPS")
	}
}

func TestStepShare(t *testing.T) {
	s := &Stats{}
	if s.StepShare(StepTopDown) != 0 {
		t.Fatal("empty stats share nonzero")
	}
	s.AddStep(StepTopDown, 3*time.Second)
	s.AddStep(StepAugment, time.Second)
	if got := s.StepShare(StepTopDown); got != 0.75 {
		t.Fatalf("share = %f, want 0.75", got)
	}
}

func TestStatsString(t *testing.T) {
	withSteps := &Stats{Algorithm: "G", Complete: true}
	withSteps.AddStep(StepTopDown, 3*time.Second)
	withSteps.AddStep(StepGraft, time.Second)

	tests := []struct {
		name     string
		stats    *Stats
		want     []string
		dontWant []string
	}{
		{
			name:     "grafting run",
			stats:    &Stats{Algorithm: "X", Grafts: 2, Rebuilds: 1, Complete: true},
			want:     []string{"X:", "grafts=2 rebuilds=1"},
			dontWant: []string{"PARTIAL", "steps:"},
		},
		{
			name:     "plain run hides graft counters",
			stats:    &Stats{Algorithm: "Y", Complete: true},
			dontWant: []string{"grafts"},
		},
		{
			name:  "partial run is flagged",
			stats: &Stats{Algorithm: "Z"},
			want:  []string{"[PARTIAL: stopped before a maximum matching]"},
		},
		{
			name:  "step-time breakdown (Fig. 6)",
			stats: withSteps,
			// 3s of 4s accounted step time is 75%; zero-time steps are
			// omitted from the breakdown line.
			want:     []string{"steps:", "Top-Down 75.0% (3s)", "Tree-Grafting 25.0% (1s)"},
			dontWant: []string{"Bottom-Up", "Augment 0", "Statistics"},
		},
		{
			name:  "truncated frontier trace is flagged",
			stats: &Stats{Algorithm: "T", Complete: true, FrontierTraceTruncated: true},
			want:  []string{"frontier trace truncated"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := tt.stats.String()
			for _, w := range tt.want {
				if !strings.Contains(out, w) {
					t.Errorf("String() missing %q:\n%s", w, out)
				}
			}
			for _, dw := range tt.dontWant {
				if strings.Contains(out, dw) {
					t.Errorf("String() unexpectedly contains %q:\n%s", dw, out)
				}
			}
		})
	}
}

func TestAppendFrontierTraceCaps(t *testing.T) {
	s := &Stats{}
	long := make([]int64, FrontierTraceMaxLevels+10)
	s.AppendFrontierTrace(long)
	if !s.FrontierTraceTruncated {
		t.Error("over-long phase did not set the truncation marker")
	}
	if got := len(s.FrontierTrace[0]); got != FrontierTraceMaxLevels {
		t.Errorf("phase kept %d levels, want %d", got, FrontierTraceMaxLevels)
	}

	s = &Stats{}
	for i := 0; i < FrontierTraceMaxPhases+5; i++ {
		s.AppendFrontierTrace([]int64{int64(i)})
	}
	if len(s.FrontierTrace) != FrontierTraceMaxPhases {
		t.Errorf("kept %d phases, want %d", len(s.FrontierTrace), FrontierTraceMaxPhases)
	}
	if !s.FrontierTraceTruncated {
		t.Error("overflowing phases did not set the truncation marker")
	}
	// The retained prefix is the earliest phases, in order.
	if s.FrontierTrace[0][0] != 0 || s.FrontierTrace[FrontierTraceMaxPhases-1][0] != FrontierTraceMaxPhases-1 {
		t.Error("retained phases out of order")
	}

	s = &Stats{}
	s.AppendFrontierTrace([]int64{1, 2, 3})
	if s.FrontierTraceTruncated || len(s.FrontierTrace) != 1 {
		t.Errorf("in-bounds append mangled: %+v", s.FrontierTrace)
	}
}
