package matching

import (
	"strings"
	"testing"
	"time"
)

func TestStepString(t *testing.T) {
	names := map[Step]string{
		StepTopDown:    "Top-Down",
		StepBottomUp:   "Bottom-Up",
		StepAugment:    "Augment",
		StepGraft:      "Tree-Grafting",
		StepStatistics: "Statistics",
	}
	for step, want := range names {
		if got := step.String(); got != want {
			t.Errorf("Step(%d).String() = %q, want %q", step, got, want)
		}
	}
	if !strings.HasPrefix(Step(99).String(), "Step(") {
		t.Error("unknown step name")
	}
}

func TestAvgAugPathLen(t *testing.T) {
	s := &Stats{}
	if s.AvgAugPathLen() != 0 {
		t.Fatal("zero paths must give zero average")
	}
	s.AugPaths = 4
	s.AugPathLen = 20
	if s.AvgAugPathLen() != 5 {
		t.Fatalf("avg = %f", s.AvgAugPathLen())
	}
}

func TestMTEPS(t *testing.T) {
	s := &Stats{EdgesTraversed: 2_000_000, Runtime: time.Second}
	if got := s.MTEPS(); got != 2.0 {
		t.Fatalf("MTEPS = %f, want 2", got)
	}
	zero := &Stats{EdgesTraversed: 100}
	if zero.MTEPS() != 0 {
		t.Fatal("zero runtime must give zero MTEPS")
	}
}

func TestStepShare(t *testing.T) {
	s := &Stats{}
	if s.StepShare(StepTopDown) != 0 {
		t.Fatal("empty stats share nonzero")
	}
	s.AddStep(StepTopDown, 3*time.Second)
	s.AddStep(StepAugment, time.Second)
	if got := s.StepShare(StepTopDown); got != 0.75 {
		t.Fatalf("share = %f, want 0.75", got)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{Algorithm: "X", Grafts: 2, Rebuilds: 1}
	out := s.String()
	if !strings.Contains(out, "X:") || !strings.Contains(out, "grafts=2") {
		t.Fatalf("unexpected String: %q", out)
	}
	plain := &Stats{Algorithm: "Y"}
	if strings.Contains(plain.String(), "grafts") {
		t.Fatal("graft counters shown for non-grafting run")
	}
}
