package matching

import (
	"fmt"

	"graftmatch/internal/bipartite"
)

// VerifyMaximum proves that a valid matching m of g is of maximum
// cardinality. It runs the alternating-reachability BFS from all unmatched X
// vertices; by Berge's theorem m is maximum iff no unmatched Y vertex is
// reached. It additionally extracts the König minimum vertex cover
// (X \ reachedX) ∪ reachedY and checks |cover| == |M|, giving an
// independent certificate.
func VerifyMaximum(g *bipartite.Graph, m *Matching) error {
	if err := m.Verify(g); err != nil {
		return err
	}
	reachedX, reachedY, foundAug := AlternatingReach(g, m)
	if foundAug {
		return fmt.Errorf("matching: not maximum: an augmenting path exists")
	}
	// König: cover = (X not reached) ∪ (Y reached).
	var cover int64
	for x := int32(0); x < g.NX(); x++ {
		if !reachedX[x] {
			cover++
		}
	}
	for y := int32(0); y < g.NY(); y++ {
		if reachedY[y] {
			cover++
		}
	}
	if card := m.Cardinality(); cover != card {
		return fmt.Errorf("matching: König certificate failed: |cover|=%d, |M|=%d", cover, card)
	}
	// The cover must actually cover every edge.
	for x := int32(0); x < g.NX(); x++ {
		if !reachedX[x] {
			continue // x is in the cover; its edges are covered
		}
		for _, y := range g.NbrX(x) {
			if !reachedY[y] {
				return fmt.Errorf("matching: edge (%d,%d) not covered by König cover", x, y)
			}
		}
	}
	return nil
}

// AlternatingReach performs a BFS over M-alternating paths from every
// unmatched X vertex: X→Y via unmatched edges, Y→X via matched edges. It
// returns the reached vertex sets and whether an unmatched Y vertex (an
// augmenting path endpoint) was reached.
func AlternatingReach(g *bipartite.Graph, m *Matching) (reachedX, reachedY []bool, foundAug bool) {
	reachedX = make([]bool, g.NX())
	reachedY = make([]bool, g.NY())
	frontier := make([]int32, 0, g.NX())
	for x := int32(0); x < g.NX(); x++ {
		if m.MateX[x] == None {
			reachedX[x] = true
			frontier = append(frontier, x)
		}
	}
	next := make([]int32, 0, len(frontier))
	for len(frontier) > 0 {
		next = next[:0]
		for _, x := range frontier {
			for _, y := range g.NbrX(x) {
				if reachedY[y] {
					continue
				}
				reachedY[y] = true
				x2 := m.MateY[y]
				if x2 == None {
					foundAug = true
					continue
				}
				if !reachedX[x2] {
					reachedX[x2] = true
					next = append(next, x2)
				}
			}
		}
		frontier, next = next, frontier
	}
	return reachedX, reachedY, foundAug
}

// MinVertexCover returns the König minimum vertex cover derived from a
// maximum matching m: coverX[x] / coverY[y] mark covered vertices. The
// caller is responsible for m being maximum (see VerifyMaximum).
func MinVertexCover(g *bipartite.Graph, m *Matching) (coverX, coverY []bool) {
	reachedX, reachedY, _ := AlternatingReach(g, m)
	coverX = make([]bool, g.NX())
	coverY = make([]bool, g.NY())
	for x := range reachedX {
		coverX[x] = !reachedX[x]
	}
	copy(coverY, reachedY)
	return coverX, coverY
}
