package matching

import (
	"fmt"
	"strings"
	"time"
)

// Step identifies one component of an algorithm's runtime for the Fig. 6
// breakdown.
type Step int

// Steps of the MS-BFS-Graft algorithm (and, where applicable, of the
// baselines: BFS/DFS time is recorded under StepTopDown for single-direction
// algorithms).
const (
	StepTopDown Step = iota
	StepBottomUp
	StepAugment
	StepGraft
	StepStatistics
	numSteps
)

// NumSteps is the number of step buckets in Stats.StepTime, exported so
// instrumentation layers can size per-step metric tables in Step order.
const NumSteps = int(numSteps)

// String returns the paper's name for the step.
func (s Step) String() string {
	switch s {
	case StepTopDown:
		return "Top-Down"
	case StepBottomUp:
		return "Bottom-Up"
	case StepAugment:
		return "Augment"
	case StepGraft:
		return "Tree-Grafting"
	case StepStatistics:
		return "Statistics"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// Stats aggregates the quantities the paper's evaluation reports for a
// single run of a matching algorithm.
type Stats struct {
	Algorithm string

	// EdgesTraversed counts every edge examination during searches
	// (Fig. 1a and the MTEPS search rate of Fig. 4).
	EdgesTraversed int64

	// Phases is the number of search phases / iterations (Fig. 1b).
	Phases int64

	// AugPaths is the number of augmenting paths applied, and AugPathLen
	// their total length in edges; AvgAugPathLen (Fig. 1c) derives from
	// them.
	AugPaths   int64
	AugPathLen int64

	// InitialCardinality is |M| after the initializer (Karp–Sipser),
	// FinalCardinality after the algorithm.
	InitialCardinality int64
	FinalCardinality   int64

	// Grafts counts phases that used tree grafting; Rebuilds counts
	// phases that destroyed all trees and restarted from unmatched X.
	Grafts   int64
	Rebuilds int64

	// TopDownLevels and BottomUpLevels count BFS levels traversed in each
	// direction (direction-optimization diagnostics).
	TopDownLevels  int64
	BottomUpLevels int64

	// FrontierTrace, when enabled, records the frontier size at every
	// BFS level of every phase (Fig. 8). Indexed [phase][level]. Growth is
	// bounded: at most FrontierTraceMaxPhases phases of at most
	// FrontierTraceMaxLevels levels each are retained, and
	// FrontierTraceTruncated is set when an adversarial instance (one
	// augmenting path per phase, or a path-graph diameter) overruns either
	// cap.
	FrontierTrace [][]int64

	// FrontierTraceTruncated reports that FrontierTrace hit one of its caps
	// and is missing later phases or levels.
	FrontierTraceTruncated bool

	// StepTime is the wall-clock breakdown (Fig. 6).
	StepTime [numSteps]time.Duration

	// Runtime is the total wall-clock time of the algorithm (excluding
	// initialization unless stated).
	Runtime time.Duration

	// Complete reports whether the run reached a maximum matching. It is
	// false when a context-aware engine stopped early at a phase boundary
	// (cancellation or deadline), in which case the mate arrays hold the
	// valid partial matching of the last consistent state.
	Complete bool

	Threads int
}

// FrontierTrace caps: a phase count of 4096 covers every instance in the
// paper's evaluation by orders of magnitude (MS-BFS-Graft needs tens of
// phases on RMAT at scale 24), while bounding the worst case — one
// augmenting path per phase on an adversarial instance — to ~32 MiB of
// trace instead of O(|V|) slices.
const (
	// FrontierTraceMaxPhases bounds the number of phases retained.
	FrontierTraceMaxPhases = 4096

	// FrontierTraceMaxLevels bounds the BFS levels retained per phase.
	FrontierTraceMaxLevels = 4096
)

// AppendFrontierTrace appends one phase's per-level frontier sizes,
// enforcing the documented caps: phases beyond FrontierTraceMaxPhases are
// dropped and over-long phases are cut at FrontierTraceMaxLevels, setting
// FrontierTraceTruncated either way.
func (s *Stats) AppendFrontierTrace(trace []int64) {
	if len(s.FrontierTrace) >= FrontierTraceMaxPhases {
		s.FrontierTraceTruncated = true
		return
	}
	if len(trace) > FrontierTraceMaxLevels {
		trace = trace[:FrontierTraceMaxLevels]
		s.FrontierTraceTruncated = true
	}
	s.FrontierTrace = append(s.FrontierTrace, trace)
}

// AvgAugPathLen returns the mean augmenting path length in edges.
func (s *Stats) AvgAugPathLen() float64 {
	if s.AugPaths == 0 {
		return 0
	}
	return float64(s.AugPathLen) / float64(s.AugPaths)
}

// MTEPS returns the search rate in millions of traversed edges per second
// (Fig. 4: traversed edges / runtime).
func (s *Stats) MTEPS() float64 {
	if s.Runtime <= 0 {
		return 0
	}
	return float64(s.EdgesTraversed) / s.Runtime.Seconds() / 1e6
}

// AddStep accumulates elapsed time into a step bucket.
func (s *Stats) AddStep(step Step, d time.Duration) { s.StepTime[step] += d }

// StepShare returns the fraction of accounted step time spent in step.
func (s *Stats) StepShare(step Step) float64 {
	var total time.Duration
	for i := Step(0); i < numSteps; i++ {
		total += s.StepTime[i]
	}
	if total <= 0 {
		return 0
	}
	return float64(s.StepTime[step]) / float64(total)
}

// String renders a multi-line report: the headline counters, a [PARTIAL]
// marker when the run stopped before a maximum matching (cancellation or
// deadline — previously dropped, letting -stats output claim success on a
// partial run), and the Fig. 6 step-time breakdown when step times were
// recorded.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: |M| %d -> %d, phases=%d, edges=%d, augpaths=%d (avg len %.2f), time=%s",
		s.Algorithm, s.InitialCardinality, s.FinalCardinality, s.Phases,
		s.EdgesTraversed, s.AugPaths, s.AvgAugPathLen(), s.Runtime)
	if s.Grafts+s.Rebuilds > 0 {
		fmt.Fprintf(&b, ", grafts=%d rebuilds=%d", s.Grafts, s.Rebuilds)
	}
	if !s.Complete {
		b.WriteString(" [PARTIAL: stopped before a maximum matching]")
	}
	var stepTotal time.Duration
	for i := Step(0); i < numSteps; i++ {
		stepTotal += s.StepTime[i]
	}
	if stepTotal > 0 {
		b.WriteString("\n  steps:")
		for i := Step(0); i < numSteps; i++ {
			if s.StepTime[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s %.1f%% (%s)", i, 100*s.StepShare(i), s.StepTime[i].Round(time.Microsecond))
		}
	}
	if s.FrontierTraceTruncated {
		b.WriteString("\n  frontier trace truncated at cap")
	}
	return b.String()
}
