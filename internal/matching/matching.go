// Package matching defines the common vocabulary of every matching algorithm
// in this repository: the Matching type (mate arrays), validity and
// maximality verification (König certificate), and the instrumentation
// counters the paper's evaluation reports (edges traversed, phases,
// augmenting-path lengths, per-step time breakdown).
package matching

import (
	"fmt"

	"graftmatch/internal/bipartite"
)

// None marks an unmatched vertex in mate arrays.
const None = bipartite.None

// Matching is a matching of a bipartite graph as a pair of mate arrays:
// MateX[x] is the Y vertex matched to x (or None), and symmetrically MateY.
type Matching struct {
	MateX []int32
	MateY []int32
}

// New returns an empty matching for a graph with the given part sizes.
func New(nx, ny int32) *Matching {
	m := &Matching{
		MateX: make([]int32, nx),
		MateY: make([]int32, ny),
	}
	for i := range m.MateX {
		m.MateX[i] = None
	}
	for i := range m.MateY {
		m.MateY[i] = None
	}
	return m
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	c := &Matching{
		MateX: make([]int32, len(m.MateX)),
		MateY: make([]int32, len(m.MateY)),
	}
	copy(c.MateX, m.MateX)
	copy(c.MateY, m.MateY)
	return c
}

// Cardinality returns |M|, the number of matched edges.
func (m *Matching) Cardinality() int64 {
	var c int64
	for _, y := range m.MateX {
		if y != None {
			c++
		}
	}
	return c
}

// MatchingNumberFraction returns |M| relative to the total vertex count
// |X|+|Y| doubled-coverage style used in the paper's Table II ("matching
// number as a fraction of the number of vertices in V"): 2|M| / (|X|+|Y|),
// i.e. the fraction of vertices that are matched.
func (m *Matching) MatchingNumberFraction() float64 {
	n := len(m.MateX) + len(m.MateY)
	if n == 0 {
		return 0
	}
	return float64(2*m.Cardinality()) / float64(n)
}

// Match records the matched edge (x, y), overwriting any previous mates of
// x and y (callers maintain consistency; use Augment for path flips).
func (m *Matching) Match(x, y int32) {
	m.MateX[x] = y
	m.MateY[y] = x
}

// IsMatchedX reports whether X vertex x is matched.
func (m *Matching) IsMatchedX(x int32) bool { return m.MateX[x] != None }

// IsMatchedY reports whether Y vertex y is matched.
func (m *Matching) IsMatchedY(y int32) bool { return m.MateY[y] != None }

// UnmatchedX appends all unmatched X vertices to dst and returns it.
func (m *Matching) UnmatchedX(dst []int32) []int32 {
	for x := range m.MateX {
		if m.MateX[x] == None {
			dst = append(dst, int32(x))
		}
	}
	return dst
}

// Verify checks that m is a valid matching of g: mate arrays are mutually
// consistent, in range, and every matched pair is an edge of g. It reports
// malformed input (nil graph or matching, mismatched mate-array lengths) as
// a descriptive error rather than panicking.
func (m *Matching) Verify(g *bipartite.Graph) error {
	if m == nil {
		return fmt.Errorf("matching: nil matching")
	}
	if g == nil {
		return fmt.Errorf("matching: nil graph")
	}
	if int32(len(m.MateX)) != g.NX() || int32(len(m.MateY)) != g.NY() {
		return fmt.Errorf("matching: mate array lengths (%d,%d) do not match graph dimensions (%d,%d); were the mates computed on a different graph?",
			len(m.MateX), len(m.MateY), g.NX(), g.NY())
	}
	for x := int32(0); x < g.NX(); x++ {
		y := m.MateX[x]
		if y == None {
			continue
		}
		if y < 0 || y >= g.NY() {
			return fmt.Errorf("matching: mateX[%d]=%d out of range", x, y)
		}
		if m.MateY[y] != x {
			return fmt.Errorf("matching: asymmetric mates: mateX[%d]=%d but mateY[%d]=%d", x, y, y, m.MateY[y])
		}
		if !g.HasEdge(x, y) {
			return fmt.Errorf("matching: matched pair (%d,%d) is not an edge", x, y)
		}
	}
	for y := int32(0); y < g.NY(); y++ {
		x := m.MateY[y]
		if x == None {
			continue
		}
		if x < 0 || x >= g.NX() {
			return fmt.Errorf("matching: mateY[%d]=%d out of range", y, x)
		}
		if m.MateX[x] != y {
			return fmt.Errorf("matching: asymmetric mates: mateY[%d]=%d but mateX[%d]=%d", y, x, x, m.MateX[x])
		}
	}
	return nil
}

// Augment flips the matched status of every edge along the alternating path
// path = (x0, y1, x1, y2, ..., yk), which must start at an unmatched X
// vertex and end at an unmatched Y vertex with odd length. It increases the
// cardinality by exactly one.
func (m *Matching) Augment(path []int32) error {
	if len(path) < 2 || len(path)%2 != 0 {
		return fmt.Errorf("matching: augmenting path must alternate x,y,... with even vertex count, got %d", len(path))
	}
	x0, yk := path[0], path[len(path)-1]
	if m.MateX[x0] != None {
		return fmt.Errorf("matching: path start x=%d already matched", x0)
	}
	if m.MateY[yk] != None {
		return fmt.Errorf("matching: path end y=%d already matched", yk)
	}
	for i := 0; i+1 < len(path); i += 2 {
		m.Match(path[i], path[i+1])
	}
	return nil
}
