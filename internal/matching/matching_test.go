package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
)

func pathGraph() *bipartite.Graph {
	// x0-y0-x1-y1-x2-y2 path.
	return bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2},
	})
}

func TestNewEmpty(t *testing.T) {
	m := New(3, 4)
	if m.Cardinality() != 0 {
		t.Fatalf("cardinality = %d", m.Cardinality())
	}
	for _, v := range m.MateX {
		if v != None {
			t.Fatal("MateX not initialized to None")
		}
	}
	for _, v := range m.MateY {
		if v != None {
			t.Fatal("MateY not initialized to None")
		}
	}
}

func TestMatchAndCardinality(t *testing.T) {
	m := New(3, 3)
	m.Match(0, 1)
	m.Match(2, 0)
	if m.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", m.Cardinality())
	}
	if !m.IsMatchedX(0) || !m.IsMatchedY(1) || m.IsMatchedX(1) || m.IsMatchedY(2) {
		t.Fatal("IsMatched wrong")
	}
	um := m.UnmatchedX(nil)
	if len(um) != 1 || um[0] != 1 {
		t.Fatalf("unmatchedX = %v", um)
	}
}

func TestMatchingNumberFraction(t *testing.T) {
	m := New(2, 2)
	if m.MatchingNumberFraction() != 0 {
		t.Fatal("empty fraction nonzero")
	}
	m.Match(0, 0)
	m.Match(1, 1)
	if f := m.MatchingNumberFraction(); f != 1.0 {
		t.Fatalf("perfect fraction = %f", f)
	}
	empty := New(0, 0)
	if empty.MatchingNumberFraction() != 0 {
		t.Fatal("zero-vertex fraction nonzero")
	}
}

func TestVerifyValid(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(0, 0)
	m.Match(1, 1)
	m.Match(2, 2)
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesNonEdge(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(0, 2) // (0,2) is not an edge
	if err := m.Verify(g); err == nil {
		t.Fatal("want error for matched non-edge")
	}
}

func TestVerifyCatchesAsymmetry(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.MateX[0] = 0 // no reverse pointer
	if err := m.Verify(g); err == nil {
		t.Fatal("want error for asymmetric mates")
	}
	m2 := New(3, 3)
	m2.MateY[0] = 0
	if err := m2.Verify(g); err == nil {
		t.Fatal("want error for asymmetric mateY")
	}
}

func TestVerifyCatchesOutOfRange(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.MateX[0] = 7
	if err := m.Verify(g); err == nil {
		t.Fatal("want error for out-of-range mate")
	}
	m2 := New(3, 3)
	m2.MateY[0] = -5
	m2.MateY[0] = 9
	if err := m2.Verify(g); err == nil {
		t.Fatal("want error for out-of-range mateY")
	}
	bad := New(2, 2)
	if err := bad.Verify(g); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestAugment(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(1, 0)
	m.Match(2, 1)
	// Augmenting path x0-y0-x1-y1-x2-y2.
	if err := m.Augment([]int32{0, 0, 1, 1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", m.Cardinality())
	}
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentRejectsBadPaths(t *testing.T) {
	m := New(3, 3)
	if err := m.Augment([]int32{0}); err == nil {
		t.Fatal("want error for odd-length path")
	}
	if err := m.Augment(nil); err == nil {
		t.Fatal("want error for empty path")
	}
	m.Match(0, 0)
	if err := m.Augment([]int32{0, 1}); err == nil {
		t.Fatal("want error for matched start")
	}
	m2 := New(3, 3)
	m2.Match(1, 1)
	if err := m2.Augment([]int32{0, 1}); err == nil {
		t.Fatal("want error for matched end")
	}
}

func TestClone(t *testing.T) {
	m := New(2, 2)
	m.Match(0, 1)
	c := m.Clone()
	c.Match(1, 0)
	if m.IsMatchedX(1) {
		t.Fatal("clone aliases original")
	}
	if !c.IsMatchedX(0) || !c.IsMatchedX(1) {
		t.Fatal("clone lost state")
	}
}

func TestVerifyMaximumOnPerfect(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(0, 0)
	m.Match(1, 1)
	m.Match(2, 2)
	if err := VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMaximumRejectsNonMaximum(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(1, 0)
	m.Match(2, 1)
	// Cardinality 2, but maximum is 3.
	if err := VerifyMaximum(g, m); err == nil {
		t.Fatal("want error for non-maximum matching")
	}
}

func TestAlternatingReach(t *testing.T) {
	g := pathGraph()
	m := New(3, 3)
	m.Match(1, 0)
	m.Match(2, 1)
	rx, ry, aug := AlternatingReach(g, m)
	if !aug {
		t.Fatal("augmenting path exists but not found")
	}
	// From unmatched x0: reach y0, its mate x1, then y1, x2, y2.
	for i, want := range []bool{true, true, true} {
		if rx[i] != want {
			t.Fatalf("reachedX[%d] = %v", i, rx[i])
		}
	}
	for i, want := range []bool{true, true, true} {
		if ry[i] != want {
			t.Fatalf("reachedY[%d] = %v", i, ry[i])
		}
	}
}

func TestMinVertexCoverCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nx := int32(rng.Intn(20) + 2)
		ny := int32(rng.Intn(20) + 2)
		b := bipartite.NewBuilder(nx, ny)
		for i := 0; i < 100; i++ {
			_ = b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny))))
		}
		g := b.Build()
		m := maximumByAugmentation(g)
		coverX, coverY := MinVertexCover(g, m)
		for x := int32(0); x < nx; x++ {
			for _, y := range g.NbrX(x) {
				if !coverX[x] && !coverY[y] {
					t.Fatalf("edge (%d,%d) uncovered", x, y)
				}
			}
		}
		var size int64
		for _, c := range coverX {
			if c {
				size++
			}
		}
		for _, c := range coverY {
			if c {
				size++
			}
		}
		if size != m.Cardinality() {
			t.Fatalf("cover size %d != matching %d", size, m.Cardinality())
		}
	}
}

// maximumByAugmentation is an independent, dead-simple reference maximum
// matcher (repeated BFS augmentation) used to validate the certificates.
func maximumByAugmentation(g *bipartite.Graph) *Matching {
	m := New(g.NX(), g.NY())
	for {
		// BFS from all unmatched X for one augmenting path.
		parent := make([]int32, g.NY())
		for i := range parent {
			parent[i] = None
		}
		visited := make([]bool, g.NY())
		var frontier []int32
		for x := int32(0); x < g.NX(); x++ {
			if m.MateX[x] == None {
				frontier = append(frontier, x)
			}
		}
		var endY int32 = None
		rootOf := make(map[int32]int32)
		for _, x := range frontier {
			rootOf[x] = x
		}
	bfs:
		for len(frontier) > 0 && endY == None {
			var next []int32
			for _, x := range frontier {
				for _, y := range g.NbrX(x) {
					if visited[y] {
						continue
					}
					visited[y] = true
					parent[y] = x
					if m.MateY[y] == None {
						endY = y
						break bfs
					}
					next = append(next, m.MateY[y])
				}
			}
			frontier = next
		}
		if endY == None {
			return m
		}
		y := endY
		for {
			x := parent[y]
			prev := m.MateX[x]
			m.Match(x, y)
			if prev == None {
				break
			}
			y = prev
		}
	}
}

// TestCertificateProperty: for random graphs, the reference matcher's
// result always passes VerifyMaximum, and dropping one matched edge always
// fails it (when cardinality > 0).
func TestCertificateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := int32(rng.Intn(15) + 1)
		ny := int32(rng.Intn(15) + 1)
		b := bipartite.NewBuilder(nx, ny)
		for i := 0; i < 60; i++ {
			_ = b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny))))
		}
		g := b.Build()
		m := maximumByAugmentation(g)
		if err := VerifyMaximum(g, m); err != nil {
			return false
		}
		if m.Cardinality() == 0 {
			return true
		}
		// Remove one matched edge: no longer maximum.
		for x := int32(0); x < nx; x++ {
			if y := m.MateX[x]; y != None {
				m.MateX[x] = None
				m.MateY[y] = None
				break
			}
		}
		return VerifyMaximum(g, m) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
