package msbfs

import (
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestRunMatchesReference(t *testing.T) {
	g := gen.ER(300, 300, 1200, 1)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	for _, p := range []int{1, 4} {
		m := matchinit.KarpSipser(g, 1)
		stats := Run(g, m, p)
		if m.Cardinality() != ref.Cardinality() {
			t.Fatalf("p=%d: %d, want %d", p, m.Cardinality(), ref.Cardinality())
		}
		if stats.Algorithm != "MS-BFS" {
			t.Fatalf("algorithm name %q", stats.Algorithm)
		}
		if stats.Grafts != 0 {
			t.Fatalf("plain MS-BFS grafted %d times", stats.Grafts)
		}
		if stats.BottomUpLevels != 0 {
			t.Fatalf("plain MS-BFS used bottom-up")
		}
	}
}

func TestRunDirOpt(t *testing.T) {
	g := gen.ER(400, 400, 4000, 2)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	m := matching.New(g.NX(), g.NY())
	stats := RunDirOpt(g, m, 2)
	if m.Cardinality() != ref.Cardinality() {
		t.Fatalf("%d, want %d", m.Cardinality(), ref.Cardinality())
	}
	if stats.Algorithm != "MS-BFS+DirOpt" {
		t.Fatalf("algorithm name %q", stats.Algorithm)
	}
	if stats.Grafts != 0 {
		t.Fatal("dir-opt variant must not graft")
	}
}

// TestGraftingReducesEdgesTraversed reproduces the paper's core claim in
// miniature: on a multi-phase instance, MS-BFS without grafting re-traverses
// failed trees every phase, so full MS-BFS-Graft should touch at most as
// many edges on low-matching-number graphs.
func TestMSBFSRedundantTraversals(t *testing.T) {
	g := gen.WebLike(10, 4, 0.3, 3)
	m1 := matching.New(g.NX(), g.NY())
	plain := Run(g, m1, 1)
	if plain.Phases < 3 {
		t.Skipf("instance too easy: %d phases", plain.Phases)
	}
	// The redundancy signature: plain MS-BFS traverses more edges per
	// phase than the phase-1 forest alone, because failed trees rebuild.
	if plain.EdgesTraversed < g.NumEdges() {
		t.Logf("note: instance solved with few traversals (%d)", plain.EdgesTraversed)
	}
	if err := matching.VerifyMaximum(g, m1); err != nil {
		t.Fatal(err)
	}
}
