// Package msbfs provides the MS-BFS baseline (Algorithm 2 with BFS
// searches): multi-source level-synchronous BFS matching with neither tree
// grafting nor direction optimization. It is the starting point of the
// paper's Fig. 7 ablation and shares the engine of internal/core with both
// features switched off, which is exactly how the paper frames MS-BFS-Graft
// ("we employ tree-grafting to enhance MS-BFS").
package msbfs

import (
	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/matching"
)

// Run computes a maximum cardinality matching with plain MS-BFS using p
// workers, updating m in place.
func Run(g *bipartite.Graph, m *matching.Matching, p int) *matching.Stats {
	return core.Run(g, m, core.Options{Threads: p}.Defaults())
}

// RunDirOpt computes the matching with MS-BFS plus direction-optimized
// traversal but no grafting (the middle rung of the Fig. 7 ablation).
func RunDirOpt(g *bipartite.Graph, m *matching.Matching, p int) *matching.Stats {
	return core.Run(g, m, core.Options{Threads: p, DirectionOptimized: true}.Defaults())
}
