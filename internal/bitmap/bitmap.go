// Package bitmap provides a concurrent bit vector with atomic test-and-set,
// the Go analog of the paper's __sync_fetch_and_or visited flags (§IV-A).
// One bit per vertex costs 32x less memory traffic than an int32 flag array,
// at the price of word-level contention between vertices sharing a cache
// line of bits; the engine exposes both so the trade-off is benchmarkable
// (see BenchmarkAblationVisited).
package bitmap

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-size concurrent bit vector. The zero value is unusable;
// call New.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns a Bitmap holding n bits, all clear.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Test reports whether bit i is set, with an atomic load (safe against
// concurrent TestAndSet).
func (b *Bitmap) Test(i int32) bool {
	w := atomic.LoadUint64(&b.words[i/wordBits])
	return w&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether this call changed it from 0 to
// 1 — i.e. whether the caller won the claim. Implemented as a fetch-and-or
// loop (the paper's __sync_fetch_and_or).
func (b *Bitmap) TestAndSet(i int32) bool {
	word := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return true
		}
	}
}

// Set sets bit i without claiming semantics (single-writer contexts).
func (b *Bitmap) Set(i int32) {
	word := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 || atomic.CompareAndSwapUint64(word, old, old|mask) {
			return
		}
	}
}

// Clear clears bit i atomically.
func (b *Bitmap) Clear(i int32) {
	word := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(word)
		if old&mask == 0 || atomic.CompareAndSwapUint64(word, old, old&^mask) {
			return
		}
	}
}

// Reset clears every bit. Not safe against concurrent mutation.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits. Not safe against concurrent
// mutation.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
