package bitmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	b := New(130) // spans three words
	if b.Len() != 130 {
		t.Fatalf("len = %d", b.Len())
	}
	for _, i := range []int32{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set initially", i)
		}
		if !b.TestAndSet(i) {
			t.Fatalf("first TestAndSet(%d) lost", i)
		}
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
		if b.TestAndSet(i) {
			t.Fatalf("second TestAndSet(%d) won", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatalf("clear failed: count=%d", b.Count())
	}
	b.Clear(64) // double clear is a no-op
	b.Set(64)
	b.Set(64) // double set is a no-op
	if !b.Test(64) {
		t.Fatal("set failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("count after reset = %d", b.Count())
	}
}

// TestExactlyOneWinner: under contention, every bit is claimed exactly once.
func TestExactlyOneWinner(t *testing.T) {
	const n = 1 << 14
	const p = 8
	b := New(n)
	wins := make([]int32, n)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for i := int32(0); i < n; i++ {
				if b.TestAndSet(i) {
					atomic.AddInt32(&wins[i], 1)
				}
			}
		}()
	}
	wg.Wait()
	for i, c := range wins {
		if c != 1 {
			t.Fatalf("bit %d won %d times", i, c)
		}
	}
	if b.Count() != n {
		t.Fatalf("count = %d", b.Count())
	}
}

// TestCountMatchesModel compares against a map-based model.
func TestCountMatchesModel(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := New(1 << 16)
		model := map[int32]bool{}
		for _, raw := range idxs {
			i := int32(raw)
			won := b.TestAndSet(i)
			if won == model[i] {
				return false // must win iff not already in model
			}
			model[i] = true
		}
		return b.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
