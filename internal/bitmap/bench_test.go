package bitmap

import (
	"sync/atomic"
	"testing"
)

func BenchmarkTestAndSet(b *testing.B) {
	bm := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.TestAndSet(int32(i & (1<<20 - 1)))
	}
}

// BenchmarkInt32CAS is the visited-flag alternative the engine compares
// against (32x the memory, no word contention).
func BenchmarkInt32CAS(b *testing.B) {
	flags := make([]int32, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := int32(i & (1<<20 - 1))
		if atomic.LoadInt32(&flags[j]) == 0 {
			atomic.CompareAndSwapInt32(&flags[j], 0, 1)
		}
	}
}

func BenchmarkTest(b *testing.B) {
	bm := New(1 << 20)
	for i := int32(0); i < 1<<20; i += 2 {
		bm.Set(i)
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bm.Test(int32(i & (1<<20 - 1)))
	}
	_ = sink
}
