package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// getOnly rejects non-GET (and non-HEAD) methods with 405. The obs-native
// endpoints are pure reads; anything else on them is a client bug worth
// surfacing. The /debug/ tree keeps stdlib semantics — pprof's symbol
// endpoint legitimately accepts POST — so it is not wrapped.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, req)
	}
}

// Handler returns the operational HTTP surface for one recorder:
//
//	/               endpoint index
//	/metrics        Prometheus text exposition (with trace exemplars)
//	/metrics.json   folded registry as JSON
//	/status         live run status (phase, cardinality, rung, checkpoint)
//	/cluster        per-rank cluster snapshot (dist runs)
//	/requests       live in-flight requests (matchd)
//	/trace          Chrome trace-event JSON (about://tracing, Perfetto)
//	/trace/summary  human-readable flame summary of the span ring
//	/debug/pprof/   stdlib pprof (profile, heap, goroutine, ...)
//	/debug/vars     stdlib expvar
//
// Every endpoint reads shared state through atomics or short mutexes, so
// scraping a live run never blocks the engines.
func Handler(rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", getOnly(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Error deliberately dropped: a vanished scraper is not our problem.
		_, _ = w.Write([]byte(indexText))
	}))
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rec.Registry().WritePrometheus(w) // write error means the scraper went away
	}))
	mux.HandleFunc("/metrics.json", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Registry().Snapshot())
	}))
	mux.HandleFunc("/status", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Status())
	}))
	mux.HandleFunc("/cluster", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Cluster())
	}))
	mux.HandleFunc("/requests", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reqs := rec.Requests()
		if reqs == nil {
			reqs = []ReqInfo{}
		}
		_ = json.NewEncoder(w).Encode(reqs)
	}))
	mux.HandleFunc("/trace", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.Tracer().WriteChromeTrace(w) // write error means the scraper went away
	}))
	mux.HandleFunc("/trace/summary", getOnly(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rec.Tracer().WriteFlameSummary(w) // write error means the scraper went away
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

const indexText = `graftmatch observability surface
  /metrics        Prometheus text exposition (with trace exemplars)
  /metrics.json   metrics registry as JSON
  /status         live run status (phase, cardinality, rung, last checkpoint)
  /cluster        per-rank cluster snapshot (dist runs: clock offsets, retransmits, step latencies)
  /requests       live in-flight requests (matchd: id, trace, endpoint, state)
  /trace          Chrome trace-event JSON (load in Perfetto / about://tracing)
  /trace/summary  flame summary of the span ring
  /debug/pprof/   stdlib pprof
  /debug/vars     stdlib expvar
`
