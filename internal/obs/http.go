package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the operational HTTP surface for one recorder:
//
//	/               endpoint index
//	/metrics        Prometheus text exposition
//	/metrics.json   folded registry as JSON
//	/status         live run status (phase, cardinality, rung, checkpoint)
//	/trace          Chrome trace-event JSON (about://tracing, Perfetto)
//	/trace/summary  human-readable flame summary of the span ring
//	/debug/pprof/   stdlib pprof (profile, heap, goroutine, ...)
//	/debug/vars     stdlib expvar
//
// Every endpoint reads shared state through atomics or short mutexes, so
// scraping a live run never blocks the engines.
func Handler(rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Error deliberately dropped: a vanished scraper is not our problem.
		_, _ = w.Write([]byte(indexText))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rec.Registry().WritePrometheus(w) // write error means the scraper went away
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Registry().Snapshot())
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Status())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.Tracer().WriteChromeTrace(w) // write error means the scraper went away
	})
	mux.HandleFunc("/trace/summary", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rec.Tracer().WriteFlameSummary(w) // write error means the scraper went away
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

const indexText = `graftmatch observability surface
  /metrics        Prometheus text exposition
  /metrics.json   metrics registry as JSON
  /status         live run status (phase, cardinality, rung, last checkpoint)
  /trace          Chrome trace-event JSON (load in Perfetto / about://tracing)
  /trace/summary  flame summary of the span ring
  /debug/pprof/   stdlib pprof
  /debug/vars     stdlib expvar
`
