// Package obs is the live observability substrate: a lock-free metrics
// registry with cache-line-padded per-worker slots, a bounded span tracer
// with Chrome trace-event export, and an operational HTTP surface. It is
// stdlib-only and designed around a nil-receiver no-op default: every engine
// threads a *Recorder through its options, and when the recorder is nil each
// instrumentation call is a single nil check — zero allocations, pinned by
// alloc tests — so the hot paths the kernels run are never taxed by an
// observer that is not there.
package obs

import (
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one per-worker counter slot, padded to a full 64-byte cache line
// so concurrent workers never write-share a line (the same idiom as
// par.Counter and queue.Local). Unlike par.Counter the slot is atomic: the
// HTTP surface aggregates cells while workers are mid-phase, so reads and
// writes genuinely race and must both be atomic.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing per-worker counter. Add is wait-free
// (one atomic add on the worker's own cache line); Value folds the cells on
// read. A nil *Counter is a valid no-op, which is how an engine built with a
// nil Recorder carries its metric handles.
type Counter struct {
	cells []cell
}

// Add accumulates delta into worker w's slot. Callers pass their par worker
// id; out-of-range ids wrap rather than fault so callers on the driver
// goroutine can always use 0.
func (c *Counter) Add(w int, delta int64) {
	if c == nil {
		return
	}
	i := uint(w) % uint(len(c.cells))
	c.cells[i].n.Add(delta)
}

// Value returns the sum over all worker slots.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// ValueAt returns worker slot w's contribution alone. The dist coordinator
// indexes its per-rank counters by rank-as-worker-slot, so this is how the
// /cluster surface reads one rank's share without a labelled metric per rank.
func (c *Counter) ValueAt(w int) int64 {
	if c == nil || len(c.cells) == 0 {
		return 0
	}
	return c.cells[uint(w)%uint(len(c.cells))].n.Load()
}

// Gauge is a single instantaneous value (current phase, cardinality). Set
// and Value are atomic; padding keeps a hot gauge off its neighbours' lines.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores the current value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value. Nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets is the fixed bucket count of every Histogram: bucket i holds
// observations whose bit length is i (v <= 2^i - 1), i.e. power-of-two
// bounds from 0 up to 2^44-1 (~4.8 hours in nanoseconds, ~16 TiB in bytes),
// with the last bucket as +Inf overflow. 2 + 46 int64 fields make each
// per-worker row exactly 384 bytes — a whole number of cache lines, so the
// falseshare layout rule holds with no explicit padding field.
const numBuckets = 46

// histRow is one worker's histogram slot: count, sum, and the bucket array,
// sized to a multiple of 64 bytes (48 int64s = 384 B).
type histRow struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// exemplar is the most recent trace-tagged observation that landed in one
// bucket: enough to jump from a latency bucket on /metrics to the matching
// request trace on /trace.
type exemplar struct {
	value  int64
	trace  uint64
	unixNS int64
}

// Histogram is a per-worker power-of-two histogram (frontier sizes, fsync
// latencies). Observe is wait-free on the worker's own row; snapshots fold
// rows on read. A nil *Histogram is a valid no-op handle.
//
// Exemplars live beside the rows under their own mutex: only ObserveEx (one
// call per served request, never a kernel hot path) touches it, so Observe
// keeps its wait-free single-row contract.
type Histogram struct {
	rows []histRow

	exMu sync.Mutex
	ex   [numBuckets]exemplar
}

// bucketIndex maps a value to its power-of-two bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Observe records one value into worker w's row. Nil-safe; out-of-range
// worker ids wrap.
func (h *Histogram) Observe(w int, v int64) {
	if h == nil {
		return
	}
	i := uint(w) % uint(len(h.rows))
	r := &h.rows[i]
	r.count.Add(1)
	r.sum.Add(v)
	r.buckets[bucketIndex(v)].Add(1)
}

// ObserveEx records one value like Observe and, when trace is nonzero,
// remembers it as the bucket's exemplar so the exposition can link the
// latency bucket to the request trace that produced it. Nil-safe.
func (h *Histogram) ObserveEx(w int, v int64, trace uint64) {
	if h == nil {
		return
	}
	h.Observe(w, v)
	if trace == 0 {
		return
	}
	now := nowUnixNano()
	b := bucketIndex(v)
	h.exMu.Lock()
	h.ex[b] = exemplar{value: v, trace: trace, unixNS: now}
	h.exMu.Unlock()
}

// Exemplar is the JSON form of one bucket's retained exemplar.
type Exemplar struct {
	Bucket int    `json:"bucket"`
	Value  int64  `json:"value"`
	Trace  string `json:"trace"`
	UnixNS int64  `json:"unix_ns"`
}

// HistSnapshot is a folded histogram: total count, sum, and the per-bucket
// counts (non-cumulative; bucket i covers values of bit length i).
type HistSnapshot struct {
	Count     int64             `json:"count"`
	Sum       int64             `json:"sum"`
	Buckets   [numBuckets]int64 `json:"buckets"`
	Exemplars []Exemplar        `json:"exemplars,omitempty"`
}

// snapshot folds all worker rows.
func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.rows {
		r := &h.rows[i]
		s.Count += r.count.Load()
		s.Sum += r.sum.Load()
		for b := 0; b < numBuckets; b++ {
			s.Buckets[b] += r.buckets[b].Load()
		}
	}
	h.exMu.Lock()
	for b := 0; b < numBuckets; b++ {
		if e := h.ex[b]; e.trace != 0 {
			s.Exemplars = append(s.Exemplars, Exemplar{
				Bucket: b, Value: e.value, Trace: TraceHex(e.trace), UnixNS: e.unixNS,
			})
		}
	}
	h.exMu.Unlock()
	return s
}

// nowUnixNano is the single time dependency of the metrics layer, split out
// so exemplar tests can pin timestamps.
var nowUnixNano = func() int64 { return time.Now().UnixNano() }

// bucketBound returns the inclusive upper bound of bucket i, or -1 for the
// +Inf overflow bucket.
func bucketBound(i int) int64 {
	if i >= numBuckets-1 {
		return -1
	}
	return int64(1)<<uint(i) - 1
}

// Registry holds the named metrics. Registration (get-or-create) takes a
// mutex and happens once per handle at engine construction; the handles
// themselves are lock-free. Export walks the maps under the same mutex —
// registration is rare and export is off the hot path, so contention is nil.
type Registry struct {
	mu       sync.Mutex
	workers  int
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// newRegistry sizes per-worker metric storage for `workers` slots.
func newRegistry(workers int) *Registry {
	if workers <= 0 {
		workers = 1
	}
	return &Registry{
		workers:  workers,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use. The first
// registration's help string wins.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{cells: make([]cell, r.workers)}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{rows: make([]histRow, r.workers)}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// sortedKeys returns the map's keys in sorted order (deterministic export).
func sortedCounterKeys(m map[string]*Counter) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedGaugeKeys(m map[string]*Gauge) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedHistKeys(m map[string]*Histogram) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum/_count.
// Output is sorted by metric name and built with append/strconv so the
// export loops allocate only the one reusable line buffer.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 256)
	var err error
	flush := func() bool {
		if err != nil {
			return false
		}
		_, err = w.Write(buf)
		buf = buf[:0]
		return err == nil
	}
	for _, name := range sortedCounterKeys(r.counters) {
		c := r.counters[name]
		buf = appendHeader(buf, name, r.help[name], "counter")
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, c.Value(), 10)
		buf = append(buf, '\n')
		if !flush() {
			return err
		}
	}
	for _, name := range sortedGaugeKeys(r.gauges) {
		g := r.gauges[name]
		buf = appendHeader(buf, name, r.help[name], "gauge")
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.Value(), 10)
		buf = append(buf, '\n')
		if !flush() {
			return err
		}
	}
	for _, name := range sortedHistKeys(r.hists) {
		s := r.hists[name].snapshot()
		var exAt [numBuckets]*Exemplar
		for i := range s.Exemplars {
			exAt[s.Exemplars[i].Bucket] = &s.Exemplars[i]
		}
		buf = appendHeader(buf, name, r.help[name], "histogram")
		cum := int64(0)
		for b := 0; b < numBuckets; b++ {
			cum += s.Buckets[b]
			if s.Buckets[b] == 0 && b < numBuckets-1 {
				continue // keep the exposition compact: skip empty finite buckets
			}
			buf = append(buf, name...)
			buf = append(buf, `_bucket{le="`...)
			if bound := bucketBound(b); bound >= 0 {
				buf = strconv.AppendInt(buf, bound, 10)
			} else {
				buf = append(buf, "+Inf"...)
			}
			buf = append(buf, `"} `...)
			buf = strconv.AppendInt(buf, cum, 10)
			if e := exAt[b]; e != nil {
				// OpenMetrics-style exemplar: ties the bucket to the last
				// trace id observed in it, timestamped in seconds.
				buf = append(buf, ` # {trace_id="`...)
				buf = append(buf, e.Trace...)
				buf = append(buf, `"} `...)
				buf = strconv.AppendInt(buf, e.Value, 10)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, e.UnixNS/1e9, 10)
			}
			buf = append(buf, '\n')
		}
		buf = append(buf, name...)
		buf = append(buf, "_sum "...)
		buf = strconv.AppendInt(buf, s.Sum, 10)
		buf = append(buf, '\n')
		buf = append(buf, name...)
		buf = append(buf, "_count "...)
		buf = strconv.AppendInt(buf, s.Count, 10)
		buf = append(buf, '\n')
		if !flush() {
			return err
		}
	}
	return err
}

// appendHeader appends the # HELP / # TYPE preamble for one metric.
func appendHeader(buf []byte, name, help, typ string) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, help...)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, typ...)
	buf = append(buf, '\n')
	return buf
}

// MetricsSnapshot is the JSON shape of the registry: folded counter and
// gauge values plus per-histogram bucket snapshots.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot folds every metric into a MetricsSnapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// BucketBounds returns the inclusive upper bounds of the histogram buckets
// (the last entry, -1, is the +Inf overflow bucket). Exposed so tests and
// the JSON surface can label HistSnapshot.Buckets.
func BucketBounds() [numBuckets]int64 {
	var b [numBuckets]int64
	for i := range b {
		b[i] = bucketBound(i)
	}
	return b
}
