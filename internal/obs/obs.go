package obs

import (
	"hash/fnv"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Recorder.
type Config struct {
	// Workers is the number of per-worker metric slots; 0 means GOMAXPROCS
	// at construction time. Sizing it to the engine's thread count keeps
	// every worker on its own cache line.
	Workers int

	// TraceCapacity bounds the span ring buffer; 0 means 16384. Older
	// spans are dropped (and counted) once the ring wraps.
	TraceCapacity int
}

// reqTableCap bounds the live-inflight request table served at /requests.
// matchd's admission controller caps concurrency far below this; when the
// table is somehow full ReqBegin returns token 0 and the request simply is
// not tracked — tracking is best-effort, never back-pressure.
const reqTableCap = 1024

// ReqInfo is one in-flight request row on the /requests surface.
type ReqInfo struct {
	ID        string `json:"id"`
	Trace     string `json:"trace"`
	Endpoint  string `json:"endpoint"`
	Instance  string `json:"instance,omitempty"`
	Class     string `json:"class,omitempty"`
	State     string `json:"state"`
	StartedAt int64  `json:"started_at_unix_ns"`
}

// reqSlot is one slot of the inflight table; token 0 marks it free.
type reqSlot struct {
	token uint64
	info  ReqInfo
}

// RankStatus is one rank's row in the cluster snapshot: liveness, the
// handshake clock-offset estimate, and the per-rank counter shares the
// coordinator reads out of its rank-indexed metric slots.
type RankStatus struct {
	Rank             int   `json:"rank"`
	Alive            bool  `json:"alive"`
	ClockOffsetNS    int64 `json:"clock_offset_ns"`
	Reconnects       int64 `json:"reconnects"`
	Deaths           int64 `json:"deaths"`
	Retransmits      int64 `json:"retransmits"`
	SpansIngested    int64 `json:"spans_ingested"`
	SpansDropped     int64 `json:"spans_dropped"`
	Steps            int64 `json:"steps"`
	StepLatencySumNS int64 `json:"step_latency_sum_ns"`
	StepLatencyMaxNS int64 `json:"step_latency_max_ns"`
}

// ClusterSnapshot is the /cluster surface: the run trace id plus one
// RankStatus per rank, refreshed by the coordinator at phase boundaries and
// recovery epochs.
type ClusterSnapshot struct {
	Trace      string       `json:"trace,omitempty"`
	Epoch      int64        `json:"epoch"`
	Supersteps int64        `json:"supersteps"`
	Recoveries int64        `json:"recoveries"`
	Ranks      []RankStatus `json:"ranks,omitempty"`
	UpdatedAt  int64        `json:"updated_at_unix_ns,omitempty"`
}

// state is the mutable box behind a Recorder. It is held by pointer so that
// WithTrace can return a shallow Recorder copy (same registry, tracer, and
// state; different trace id) without copying a mutex.
type state struct {
	mu      sync.Mutex
	status  RunStatus
	cluster ClusterSnapshot

	reqMu  sync.Mutex
	reqSeq uint64
	reqs   [reqTableCap]reqSlot
}

// Recorder is the hub the engines record into: a metrics registry, a span
// tracer, and a run-status snapshot, plus pre-registered handles for the
// cross-engine metrics (run gauges, checkpoint and supervision counters).
//
// A nil *Recorder is the no-op default: every method (and every handle a nil
// recorder returns) degrades to a nil check, so instrumented engines run
// allocation-free and effectively untaxed when nobody is observing. The
// alloc tests in this package pin that property.
//
// A Recorder optionally carries a trace id: WithTrace derives a view that
// stamps every Span with that id, which is how one matchd request's engine
// phases stay correlatable on /trace.
type Recorder struct {
	reg    *Registry
	tracer *Tracer
	st     *state
	trace  uint64

	phaseG    *Gauge
	cardG     *Gauge
	completeG *Gauge
	rungC     *Counter
	ckptC     *Counter
	ckptBytes *Counter
	ckptFsync *Histogram
}

// New builds a live Recorder.
func New(cfg Config) *Recorder {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Recorder{
		reg:    newRegistry(workers),
		tracer: newTracer(cfg.TraceCapacity),
		st:     &state{},
	}
	r.phaseG = r.reg.Gauge("graftmatch_run_phase", "current search phase of the live run")
	r.cardG = r.reg.Gauge("graftmatch_run_cardinality", "matching cardinality after the last completed phase")
	r.completeG = r.reg.Gauge("graftmatch_run_complete", "1 once the run reached a maximum matching, else 0")
	r.rungC = r.reg.Counter("graftmatch_supervise_rung_transitions_total", "supervision ladder rung starts")
	r.ckptC = r.reg.Counter("graftmatch_checkpoint_snapshots_total", "checkpoint snapshots written")
	r.ckptBytes = r.reg.Counter("graftmatch_checkpoint_bytes_total", "checkpoint bytes written")
	r.ckptFsync = r.reg.Histogram("graftmatch_checkpoint_fsync_ns", "checkpoint fsync latency in nanoseconds")
	return r
}

// traceSeq disambiguates trace ids minted within the same clock tick.
var traceSeq atomic.Uint64

// NewTraceID mints a nonzero 64-bit trace id: the wall clock, the pid, and a
// process-local sequence mixed through splitmix64. Not cryptographic — it
// only needs to be unique enough to correlate spans and log lines.
func NewTraceID() uint64 {
	x := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ traceSeq.Add(1)
	// splitmix64 finalizer
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// TraceHex renders a trace id in its canonical 16-hex form — the same text
// matchd returns in X-Request-Id and /trace embeds in span args.
func TraceHex(trace uint64) string {
	return string(appendTraceHex(make([]byte, 0, 16), trace))
}

// HashTrace folds an externally supplied request id (a client's
// X-Request-Id) into a nonzero trace id via FNV-64a, so foreign ids
// correlate spans without being trusted as raw integers.
func HashTrace(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

// WithTrace returns a view of the recorder whose Spans are stamped with
// trace. The view shares the registry, tracer, status, and handles; only the
// stamp differs. Nil recorder and zero trace both return the receiver.
func (r *Recorder) WithTrace(trace uint64) *Recorder {
	if r == nil || trace == 0 || trace == r.trace {
		return r
	}
	child := *r
	child.trace = trace
	return &child
}

// Trace returns the trace id this recorder view stamps (0 = untagged).
func (r *Recorder) Trace() uint64 {
	if r == nil {
		return 0
	}
	return r.trace
}

// Workers returns the per-worker slot count metrics were sized for (0 for a
// nil recorder).
func (r *Recorder) Workers() int {
	if r == nil {
		return 0
	}
	return r.reg.workers
}

// Counter returns (creating on first use) a named counter handle, or nil on
// a nil recorder — the nil handle is itself a valid no-op.
func (r *Recorder) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name, help)
}

// Gauge returns a named gauge handle; nil-safe as Counter.
func (r *Recorder) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name, help)
}

// Histogram returns a named histogram handle; nil-safe as Counter.
func (r *Recorder) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name, help)
}

// Registry exposes the underlying registry (nil on a nil recorder), for the
// HTTP surface and tests.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer exposes the underlying tracer (nil on a nil recorder).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Span records one completed phase/step/superstep interval, stamped with the
// recorder's trace id. Nil-safe, allocation-free, intended for driver
// goroutines at phase granularity — never per edge or per vertex.
func (r *Recorder) Span(cat, name string, start time.Time, d time.Duration, arg int64) {
	if r == nil {
		return
	}
	r.tracer.RecordTagged(cat, name, start, d, arg, r.trace)
}

// SetCluster publishes a fresh cluster snapshot for the /cluster surface.
func (r *Recorder) SetCluster(cs ClusterSnapshot) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.cluster = cs
	r.st.mu.Unlock()
}

// Cluster returns the last published cluster snapshot (zero value on a nil
// recorder or a single-process run).
func (r *Recorder) Cluster() ClusterSnapshot {
	if r == nil {
		return ClusterSnapshot{}
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	return r.st.cluster
}

// ReqBegin registers an in-flight request and returns its table token.
// Token 0 (nil recorder or full table) means "not tracked" and is accepted
// by ReqState/ReqEnd as a no-op, so callers never branch.
func (r *Recorder) ReqBegin(info ReqInfo) uint64 {
	if r == nil {
		return 0
	}
	st := r.st
	st.reqMu.Lock()
	defer st.reqMu.Unlock()
	for i := range st.reqs {
		if st.reqs[i].token != 0 {
			continue
		}
		st.reqSeq++
		if st.reqSeq == 0 {
			st.reqSeq = 1
		}
		st.reqs[i].token = st.reqSeq
		st.reqs[i].info = info
		return st.reqSeq
	}
	return 0
}

// ReqState updates the tracked request's state label ("admitted",
// "running", "degraded", ...). No-op for token 0 or a reclaimed slot.
func (r *Recorder) ReqState(token uint64, state string) {
	if r == nil || token == 0 {
		return
	}
	st := r.st
	st.reqMu.Lock()
	for i := range st.reqs {
		if st.reqs[i].token == token {
			st.reqs[i].info.State = state
			break
		}
	}
	st.reqMu.Unlock()
}

// ReqTag attaches the instance/size-class labels once the request body has
// been decoded. No-op for token 0.
func (r *Recorder) ReqTag(token uint64, instance, class string) {
	if r == nil || token == 0 {
		return
	}
	st := r.st
	st.reqMu.Lock()
	for i := range st.reqs {
		if st.reqs[i].token == token {
			if instance != "" {
				st.reqs[i].info.Instance = instance
			}
			if class != "" {
				st.reqs[i].info.Class = class
			}
			break
		}
	}
	st.reqMu.Unlock()
}

// ReqEnd releases the tracked request's slot. No-op for token 0.
func (r *Recorder) ReqEnd(token uint64) {
	if r == nil || token == 0 {
		return
	}
	st := r.st
	st.reqMu.Lock()
	for i := range st.reqs {
		if st.reqs[i].token == token {
			st.reqs[i] = reqSlot{}
			break
		}
	}
	st.reqMu.Unlock()
}

// Requests returns a copy of the live in-flight request table, oldest first.
func (r *Recorder) Requests() []ReqInfo {
	if r == nil {
		return nil
	}
	st := r.st
	st.reqMu.Lock()
	out := make([]ReqInfo, 0, 16)
	for i := range st.reqs {
		if st.reqs[i].token != 0 {
			out = append(out, st.reqs[i].info)
		}
	}
	st.reqMu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].StartedAt < out[j-1].StartedAt; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RunStatus is the live status snapshot served at /status.
type RunStatus struct {
	Algorithm      string `json:"algorithm,omitempty"`
	Running        bool   `json:"running"`
	Complete       bool   `json:"complete"`
	Phase          int64  `json:"phase"`
	Cardinality    int64  `json:"cardinality"`
	Rung           string `json:"rung,omitempty"`
	RungOutcome    string `json:"rung_outcome,omitempty"`
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
	GraphRows      int64  `json:"graph_rows,omitempty"`
	GraphCols      int64  `json:"graph_cols,omitempty"`
	GraphEdges     int64  `json:"graph_edges,omitempty"`
	StartedAt      int64  `json:"started_at_unix_ns,omitempty"`
	UpdatedAt      int64  `json:"updated_at_unix_ns,omitempty"`
}

// Status returns the current run-status snapshot (zero value on a nil
// recorder).
func (r *Recorder) Status() RunStatus {
	if r == nil {
		return RunStatus{}
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	return r.st.status
}

// SetGraph records the instance dimensions for the status surface.
func (r *Recorder) SetGraph(rows, cols, edges int64) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.status.GraphRows, r.st.status.GraphCols, r.st.status.GraphEdges = rows, cols, edges
	r.st.mu.Unlock()
}

// RunStart marks the beginning of a run on the status surface and resets
// the run gauges.
func (r *Recorder) RunStart(algorithm string) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.st.mu.Lock()
	r.st.status.Algorithm = algorithm
	r.st.status.Running = true
	r.st.status.Complete = false
	r.st.status.Phase = 0
	r.st.status.StartedAt = now
	r.st.status.UpdatedAt = now
	r.st.mu.Unlock()
	r.phaseG.Set(0)
	r.completeG.Set(0)
}

// PhaseDone publishes the state after one completed phase: the engines call
// it from their driver goroutine at the same boundary that fires OnPhase,
// so /status and the run gauges lag the engine by at most one phase.
func (r *Recorder) PhaseDone(engine string, phase, cardinality int64) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	if engine != "" {
		r.st.status.Algorithm = engine
	}
	r.st.status.Phase = phase
	r.st.status.Cardinality = cardinality
	r.st.status.UpdatedAt = time.Now().UnixNano()
	r.st.mu.Unlock()
	r.phaseG.Set(phase)
	r.cardG.Set(cardinality)
}

// RunDone marks the end of a run.
func (r *Recorder) RunDone(complete bool, cardinality int64) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.status.Running = false
	r.st.status.Complete = complete
	r.st.status.Cardinality = cardinality
	r.st.status.UpdatedAt = time.Now().UnixNano()
	r.st.mu.Unlock()
	r.cardG.Set(cardinality)
	if complete {
		r.completeG.Set(1)
	}
}

// RungStart records a supervision ladder transition onto engine `rung`.
func (r *Recorder) RungStart(rung string) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.status.Rung = rung
	r.st.status.RungOutcome = ""
	r.st.status.UpdatedAt = time.Now().UnixNano()
	r.st.mu.Unlock()
	r.rungC.Add(0, 1)
}

// RungEnd records how the current supervision rung ended.
func (r *Recorder) RungEnd(rung, outcome string) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.status.Rung = rung
	r.st.status.RungOutcome = outcome
	r.st.status.UpdatedAt = time.Now().UnixNano()
	r.st.mu.Unlock()
}

// CheckpointSaved records one durable snapshot: its path on the status
// surface, and bytes + fsync latency in the registry.
func (r *Recorder) CheckpointSaved(path string, bytes int64, fsync time.Duration) {
	if r == nil {
		return
	}
	r.st.mu.Lock()
	r.st.status.LastCheckpoint = path
	r.st.status.UpdatedAt = time.Now().UnixNano()
	r.st.mu.Unlock()
	r.ckptC.Add(0, 1)
	r.ckptBytes.Add(0, bytes)
	r.ckptFsync.Observe(0, int64(fsync))
}
