package obs

import (
	"runtime"
	"sync"
	"time"
)

// Config sizes a Recorder.
type Config struct {
	// Workers is the number of per-worker metric slots; 0 means GOMAXPROCS
	// at construction time. Sizing it to the engine's thread count keeps
	// every worker on its own cache line.
	Workers int

	// TraceCapacity bounds the span ring buffer; 0 means 16384. Older
	// spans are dropped (and counted) once the ring wraps.
	TraceCapacity int
}

// Recorder is the hub the engines record into: a metrics registry, a span
// tracer, and a run-status snapshot, plus pre-registered handles for the
// cross-engine metrics (run gauges, checkpoint and supervision counters).
//
// A nil *Recorder is the no-op default: every method (and every handle a nil
// recorder returns) degrades to a nil check, so instrumented engines run
// allocation-free and effectively untaxed when nobody is observing. The
// alloc tests in this package pin that property.
type Recorder struct {
	reg    *Registry
	tracer *Tracer

	mu     sync.Mutex
	status RunStatus

	phaseG    *Gauge
	cardG     *Gauge
	completeG *Gauge
	rungC     *Counter
	ckptC     *Counter
	ckptBytes *Counter
	ckptFsync *Histogram
}

// New builds a live Recorder.
func New(cfg Config) *Recorder {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Recorder{
		reg:    newRegistry(workers),
		tracer: newTracer(cfg.TraceCapacity),
	}
	r.phaseG = r.reg.Gauge("graftmatch_run_phase", "current search phase of the live run")
	r.cardG = r.reg.Gauge("graftmatch_run_cardinality", "matching cardinality after the last completed phase")
	r.completeG = r.reg.Gauge("graftmatch_run_complete", "1 once the run reached a maximum matching, else 0")
	r.rungC = r.reg.Counter("graftmatch_supervise_rung_transitions_total", "supervision ladder rung starts")
	r.ckptC = r.reg.Counter("graftmatch_checkpoint_snapshots_total", "checkpoint snapshots written")
	r.ckptBytes = r.reg.Counter("graftmatch_checkpoint_bytes_total", "checkpoint bytes written")
	r.ckptFsync = r.reg.Histogram("graftmatch_checkpoint_fsync_ns", "checkpoint fsync latency in nanoseconds")
	return r
}

// Workers returns the per-worker slot count metrics were sized for (0 for a
// nil recorder).
func (r *Recorder) Workers() int {
	if r == nil {
		return 0
	}
	return r.reg.workers
}

// Counter returns (creating on first use) a named counter handle, or nil on
// a nil recorder — the nil handle is itself a valid no-op.
func (r *Recorder) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name, help)
}

// Gauge returns a named gauge handle; nil-safe as Counter.
func (r *Recorder) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name, help)
}

// Histogram returns a named histogram handle; nil-safe as Counter.
func (r *Recorder) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name, help)
}

// Registry exposes the underlying registry (nil on a nil recorder), for the
// HTTP surface and tests.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer exposes the underlying tracer (nil on a nil recorder).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Span records one completed phase/step/superstep interval. Nil-safe,
// allocation-free, intended for driver goroutines at phase granularity —
// never per edge or per vertex.
func (r *Recorder) Span(cat, name string, start time.Time, d time.Duration, arg int64) {
	if r == nil {
		return
	}
	r.tracer.Record(cat, name, start, d, arg)
}

// RunStatus is the live status snapshot served at /status.
type RunStatus struct {
	Algorithm      string `json:"algorithm,omitempty"`
	Running        bool   `json:"running"`
	Complete       bool   `json:"complete"`
	Phase          int64  `json:"phase"`
	Cardinality    int64  `json:"cardinality"`
	Rung           string `json:"rung,omitempty"`
	RungOutcome    string `json:"rung_outcome,omitempty"`
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
	GraphRows      int64  `json:"graph_rows,omitempty"`
	GraphCols      int64  `json:"graph_cols,omitempty"`
	GraphEdges     int64  `json:"graph_edges,omitempty"`
	StartedAt      int64  `json:"started_at_unix_ns,omitempty"`
	UpdatedAt      int64  `json:"updated_at_unix_ns,omitempty"`
}

// Status returns the current run-status snapshot (zero value on a nil
// recorder).
func (r *Recorder) Status() RunStatus {
	if r == nil {
		return RunStatus{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// SetGraph records the instance dimensions for the status surface.
func (r *Recorder) SetGraph(rows, cols, edges int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status.GraphRows, r.status.GraphCols, r.status.GraphEdges = rows, cols, edges
	r.mu.Unlock()
}

// RunStart marks the beginning of a run on the status surface and resets
// the run gauges.
func (r *Recorder) RunStart(algorithm string) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.status.Algorithm = algorithm
	r.status.Running = true
	r.status.Complete = false
	r.status.Phase = 0
	r.status.StartedAt = now
	r.status.UpdatedAt = now
	r.mu.Unlock()
	r.phaseG.Set(0)
	r.completeG.Set(0)
}

// PhaseDone publishes the state after one completed phase: the engines call
// it from their driver goroutine at the same boundary that fires OnPhase,
// so /status and the run gauges lag the engine by at most one phase.
func (r *Recorder) PhaseDone(engine string, phase, cardinality int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if engine != "" {
		r.status.Algorithm = engine
	}
	r.status.Phase = phase
	r.status.Cardinality = cardinality
	r.status.UpdatedAt = time.Now().UnixNano()
	r.mu.Unlock()
	r.phaseG.Set(phase)
	r.cardG.Set(cardinality)
}

// RunDone marks the end of a run.
func (r *Recorder) RunDone(complete bool, cardinality int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status.Running = false
	r.status.Complete = complete
	r.status.Cardinality = cardinality
	r.status.UpdatedAt = time.Now().UnixNano()
	r.mu.Unlock()
	r.cardG.Set(cardinality)
	if complete {
		r.completeG.Set(1)
	}
}

// RungStart records a supervision ladder transition onto engine `rung`.
func (r *Recorder) RungStart(rung string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status.Rung = rung
	r.status.RungOutcome = ""
	r.status.UpdatedAt = time.Now().UnixNano()
	r.mu.Unlock()
	r.rungC.Add(0, 1)
}

// RungEnd records how the current supervision rung ended.
func (r *Recorder) RungEnd(rung, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status.Rung = rung
	r.status.RungOutcome = outcome
	r.status.UpdatedAt = time.Now().UnixNano()
	r.mu.Unlock()
}

// CheckpointSaved records one durable snapshot: its path on the status
// surface, and bytes + fsync latency in the registry.
func (r *Recorder) CheckpointSaved(path string, bytes int64, fsync time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.status.LastCheckpoint = path
	r.status.UpdatedAt = time.Now().UnixNano()
	r.mu.Unlock()
	r.ckptC.Add(0, 1)
	r.ckptBytes.Add(0, bytes)
	r.ckptFsync.Observe(0, int64(fsync))
}
