package obs

import (
	"testing"
	"time"
)

// The zero-overhead contract: with a nil recorder (the engines' default)
// every instrumentation call — including calls through nil metric handles —
// performs zero heap allocations. This is the gate that keeps the
// observability layer off the hot paths PR 4 reclaimed.
func TestNoopRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	c := rec.Counter("graftmatch_x_total", "")
	g := rec.Gauge("graftmatch_x", "")
	h := rec.Histogram("graftmatch_x_ns", "")
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1, 5)
		g.Set(9)
		h.Observe(1, 123)
		rec.Span("core", "phase", start, time.Millisecond, 7)
		rec.PhaseDone("core", 1, 2)
		_ = c.Value()
	})
	if allocs != 0 {
		t.Errorf("no-op recorder: %v allocs/op, want 0", allocs)
	}
}

// A live recorder's per-phase hot calls are allocation-free too: counter
// adds, gauge sets, histogram observes, and span records all write into
// preallocated padded slots or the ring buffer.
func TestLiveRecorderHotPathZeroAlloc(t *testing.T) {
	rec := New(Config{Workers: 4, TraceCapacity: 1024})
	c := rec.Counter("graftmatch_x_total", "")
	g := rec.Gauge("graftmatch_x", "")
	h := rec.Histogram("graftmatch_x_ns", "")
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1, 5)
		g.Set(9)
		h.Observe(1, 123)
		rec.Span("core", "phase", start, time.Millisecond, 7)
		_ = c.Value()
	})
	if allocs != 0 {
		t.Errorf("live recorder hot path: %v allocs/op, want 0", allocs)
	}
}

// The telemetry additions must not loosen the contract: trace-tagged spans,
// exemplar'd histogram observes, and the request-table lifecycle are all
// allocation-free on a live recorder, and the no-op recorder stays free even
// through WithTrace.
func TestTelemetryPathZeroAlloc(t *testing.T) {
	rec := New(Config{Workers: 4, TraceCapacity: 1024})
	trace := NewTraceID()
	tagged := rec.WithTrace(trace)
	h := rec.Histogram("graftmatch_tel_ns", "")
	info := ReqInfo{ID: "deadbeef", Endpoint: "/match", State: "received"}
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tagged.Span("core", "phase", start, time.Millisecond, 7)
		h.ObserveEx(1, 123, trace)
		tok := rec.ReqBegin(info)
		rec.ReqState(tok, "running")
		rec.ReqEnd(tok)
	})
	if allocs != 0 {
		t.Errorf("live recorder telemetry path: %v allocs/op, want 0", allocs)
	}

	var nop *Recorder
	nopTagged := nop.WithTrace(trace)
	nh := nop.Histogram("graftmatch_tel_ns", "")
	allocs = testing.AllocsPerRun(200, func() {
		nopTagged.Span("core", "phase", start, time.Millisecond, 7)
		nh.ObserveEx(1, 123, trace)
		tok := nop.ReqBegin(info)
		nop.ReqState(tok, "running")
		nop.ReqEnd(tok)
	})
	if allocs != 0 {
		t.Errorf("no-op recorder telemetry path: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkNoopRecorder(b *testing.B) {
	var rec *Recorder
	c := rec.Counter("graftmatch_x_total", "")
	h := rec.Histogram("graftmatch_x_ns", "")
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
		h.Observe(0, int64(i))
		rec.Span("core", "phase", start, time.Microsecond, int64(i))
	}
}

func BenchmarkLiveRecorder(b *testing.B) {
	rec := New(Config{Workers: 4, TraceCapacity: 4096})
	c := rec.Counter("graftmatch_x_total", "")
	h := rec.Histogram("graftmatch_x_ns", "")
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
		h.Observe(0, int64(i))
		rec.Span("core", "phase", start, time.Microsecond, int64(i))
	}
}
