package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingWrap(t *testing.T) {
	tr := newTracer(4)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		tr.Record("core", "phase", base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, int64(i))
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	for i, s := range spans {
		if want := int64(6 + i); s.Arg != want {
			t.Errorf("span %d arg = %d, want %d (newest spans in order)", i, s.Arg, want)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := newTracer(8)
	tr.Record("pf", "phase", time.Unix(5, 0), time.Second, 1)
	spans, dropped := tr.Snapshot()
	if len(spans) != 1 || dropped != 0 {
		t.Fatalf("spans=%d dropped=%d", len(spans), dropped)
	}
	if spans[0].Cat != "pf" || spans[0].Name != "phase" || spans[0].Dur != int64(time.Second) {
		t.Errorf("span = %+v", spans[0])
	}
}

// chromeTrace mirrors the Chrome trace-event JSON object form.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	DroppedSpans    uint64        `json:"droppedSpans"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// spanEvents filters out the "M" process_name metadata rows, leaving the
// complete ("X") span events.
func spanEvents(ct chromeTrace) []chromeEvent {
	out := ct.TraceEvents[:0:0]
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "M" {
			out = append(out, ev)
		}
	}
	return out
}

func TestChromeTraceJSONSchema(t *testing.T) {
	tr := newTracer(16)
	base := time.Unix(100, 0)
	tr.Record("core", "top-down", base, 1500*time.Microsecond, 33)
	tr.Record("core", "phase", base, 2*time.Millisecond, 1)
	tr.Record("checkpoint", "save", base.Add(time.Millisecond), 400*time.Microsecond, 1024)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	events := spanEvents(ct)
	if len(events) != 3 {
		t.Fatalf("got %d span events, want 3", len(events))
	}
	tidOf := map[string]int{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X (complete event)", ev.Name, ev.Ph)
		}
		if ev.Pid != 1 {
			t.Errorf("local event %q pid = %d, want 1 (lane 0)", ev.Name, ev.Pid)
		}
		if ev.Ts < 0 || ev.Dur <= 0 {
			t.Errorf("event %q ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
		if prev, ok := tidOf[ev.Cat]; ok && prev != ev.Tid {
			t.Errorf("category %q spread over tids %d and %d", ev.Cat, prev, ev.Tid)
		}
		tidOf[ev.Cat] = ev.Tid
		if _, ok := ev.Args["v"]; !ok {
			t.Errorf("event %q missing args.v", ev.Name)
		}
	}
	if len(tidOf) != 2 {
		t.Errorf("expected 2 distinct category tracks, got %v", tidOf)
	}
	// Timestamps are relative to the earliest span, in microseconds.
	var sawSave bool
	for _, ev := range events {
		if ev.Name == "save" {
			sawSave = true
			if ev.Ts != 1000 {
				t.Errorf("save ts = %v µs, want 1000", ev.Ts)
			}
			if ev.Dur != 400 {
				t.Errorf("save dur = %v µs, want 400", ev.Dur)
			}
		}
	}
	if !sawSave {
		t.Error("save event missing")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	tr := newTracer(4)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Errorf("events = %v", ct.TraceEvents)
	}
}

func TestAppendJSONStringEscapes(t *testing.T) {
	got := string(appendJSONString(nil, "a\"b\\c\nd"))
	var back string
	if err := json.Unmarshal([]byte(got), &back); err != nil {
		t.Fatalf("escaped form %q invalid: %v", got, err)
	}
	if back != "a\"b\\c\nd" {
		t.Errorf("round trip = %q", back)
	}
}

func TestFlameSummary(t *testing.T) {
	tr := newTracer(16)
	base := time.Unix(0, 0)
	tr.Record("core", "top-down", base, 3*time.Millisecond, 0)
	tr.Record("core", "top-down", base, 1*time.Millisecond, 0)
	tr.Record("core", "augment", base, 10*time.Millisecond, 0)
	var buf bytes.Buffer
	if err := tr.WriteFlameSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "core/top-down: count=2") {
		t.Errorf("missing aggregated top-down row in:\n%s", out)
	}
	if !strings.Contains(out, "core/augment: count=1") {
		t.Errorf("missing augment row in:\n%s", out)
	}
	// Sorted by total descending: augment (10ms) before top-down (4ms).
	if strings.Index(out, "core/augment") > strings.Index(out, "core/top-down") {
		t.Errorf("rows not sorted by total desc:\n%s", out)
	}
	if !strings.Contains(out, "3 spans retained, 0 dropped") {
		t.Errorf("missing header in:\n%s", out)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("x", "y", time.Now(), time.Second, 0)
	if s, d := tr.Snapshot(); s != nil || d != 0 {
		t.Errorf("nil tracer snapshot %v %d", s, d)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFlameSummary(&buf); err != nil {
		t.Fatal(err)
	}
}
