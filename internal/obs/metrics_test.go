package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// The falseshare layout rule these types were designed around: per-worker
// slots must occupy whole cache lines.
func TestPerWorkerSlotsAreCacheLineMultiples(t *testing.T) {
	if s := unsafe.Sizeof(cell{}); s%64 != 0 {
		t.Errorf("cell is %d bytes, not a multiple of 64", s)
	}
	if s := unsafe.Sizeof(histRow{}); s%64 != 0 {
		t.Errorf("histRow is %d bytes, not a multiple of 64", s)
	}
	if s := unsafe.Sizeof(Gauge{}); s%64 != 0 {
		t.Errorf("Gauge is %d bytes, not a multiple of 64", s)
	}
}

func TestCounterConcurrentAggregation(t *testing.T) {
	const workers, perWorker = 8, 10000
	reg := newRegistry(workers)
	c := reg.Counter("x", "test")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterWorkerIDWraps(t *testing.T) {
	reg := newRegistry(2)
	c := reg.Counter("x", "test")
	c.Add(0, 1)
	c.Add(7, 1)  // wraps to slot 1
	c.Add(-1, 1) // negative ids wrap too rather than fault
	if got := c.Value(); got != 3 {
		t.Errorf("Value = %d, want 3", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := newRegistry(2)
	a := reg.Counter("same", "first help wins")
	b := reg.Counter("same", "ignored")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	if reg.help["same"] != "first help wins" {
		t.Errorf("help = %q", reg.help["same"])
	}
	if g1, g2 := reg.Gauge("g", ""), reg.Gauge("g", ""); g1 != g2 {
		t.Error("same name returned distinct gauges")
	}
	if h1, h2 := reg.Histogram("h", ""), reg.Histogram("h", ""); h1 != h2 {
		t.Error("same name returned distinct histograms")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := newRegistry(4)
	h := reg.Histogram("h", "test")
	// Values chosen to land in known power-of-two buckets: bit length i
	// means bucket i (v <= 2^i - 1).
	h.Observe(0, 0) // bucket 0
	h.Observe(1, 1) // bucket 1
	h.Observe(2, 2) // bucket 2
	h.Observe(3, 3) // bucket 2
	h.Observe(0, 1000)
	h.Observe(0, -5) // clamps to bucket 0
	s := h.snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 0+1+2+3+1000-5 {
		t.Errorf("Sum = %d", s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 2 {
		t.Errorf("buckets = %v", s.Buckets[:3])
	}
	if s.Buckets[bucketIndex(1000)] != 1 {
		t.Errorf("bucket for 1000 empty")
	}
	// Overflow lands in the +Inf bucket.
	h.Observe(0, int64(1)<<60)
	if got := h.snapshot().Buckets[numBuckets-1]; got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	b := BucketBounds()
	if b[0] != 0 || b[1] != 1 || b[2] != 3 {
		t.Errorf("bounds start %v", b[:3])
	}
	if b[numBuckets-1] != -1 {
		t.Errorf("last bound = %d, want -1 (+Inf)", b[numBuckets-1])
	}
	for i := 1; i < numBuckets-1; i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not increasing at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
}

func TestWritePrometheusShape(t *testing.T) {
	reg := newRegistry(2)
	reg.Counter("graftmatch_edges_total", "edges traversed").Add(0, 42)
	reg.Gauge("graftmatch_phase", "current phase").Set(7)
	h := reg.Histogram("graftmatch_fsync_ns", "fsync latency")
	h.Observe(0, 3)
	h.Observe(1, 100)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"# HELP graftmatch_edges_total edges traversed\n",
		"# TYPE graftmatch_edges_total counter\n",
		"graftmatch_edges_total 42\n",
		"# TYPE graftmatch_phase gauge\n",
		"graftmatch_phase 7\n",
		"# TYPE graftmatch_fsync_ns histogram\n",
		"graftmatch_fsync_ns_sum 103\n",
		"graftmatch_fsync_ns_count 2\n",
		`graftmatch_fsync_ns_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	// Every sample line must parse as `name{labels} value` with an integer
	// value, and bucket counts must be cumulative (non-decreasing).
	lastCum := int64(-1)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("non-integer value in %q: %v", line, err)
		}
		if strings.Contains(line, "_bucket{") {
			if v < lastCum {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastCum = v
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	reg := newRegistry(2)
	reg.Counter("c", "").Add(1, 5)
	reg.Gauge("g", "").Set(-3)
	reg.Histogram("h", "").Observe(0, 9)
	s := reg.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != -3 {
		t.Errorf("snapshot = %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 9 {
		t.Errorf("hist snapshot = %+v", hs)
	}
}

func TestNilRegistryWriters(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", buf.String(), err)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot %+v", s)
	}
}
