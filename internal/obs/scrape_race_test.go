package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentScrapeWhileRecording hammers /trace and /trace/summary from
// concurrent scrapers while writer goroutines record tagged spans, observe
// exemplar'd histogram values, and update the cluster snapshot. Run under
// -race this is the gate that the telemetry additions (trace tags, lanes,
// exemplars, request table, cluster snapshot) kept every reader path
// properly synchronized with the hot recording path.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	rec := New(Config{Workers: 4, TraceCapacity: 256})
	h := rec.Histogram("graftmatch_scrape_test_ns", "test")
	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: spans on several lanes, exemplars, cluster + request churn.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := NewTraceID()
			tagged := rec.WithTrace(trace)
			start := time.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tagged.Span("race", "step", start, time.Microsecond, int64(i))
				h.ObserveEx(w, int64(i%5000), trace)
				rec.Tracer().Ingest([]Span{{
					Cat: "rank", Name: "expand", Start: start.UnixNano(),
					Dur: 100, Lane: int32(w + 1), Trace: trace,
				}})
				tok := rec.ReqBegin(ReqInfo{ID: "race", Endpoint: "/match", State: "received"})
				rec.ReqState(tok, "running")
				rec.ReqEnd(tok)
				rec.SetCluster(ClusterSnapshot{Trace: TraceHex(trace), Supersteps: int64(i)})
			}
		}(w)
	}

	paths := []string{"/trace", "/trace/summary", "/metrics", "/cluster", "/requests"}
	var scrapeWG sync.WaitGroup
	for _, p := range paths {
		for k := 0; k < 2; k++ {
			scrapeWG.Add(1)
			go func(p string) {
				defer scrapeWG.Done()
				for i := 0; i < 20; i++ {
					resp, err := http.Get(srv.URL + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", p, resp.StatusCode)
					}
					if p == "/trace" {
						var ct struct {
							TraceEvents []json.RawMessage `json:"traceEvents"`
						}
						if err := json.NewDecoder(resp.Body).Decode(&ct); err != nil {
							t.Errorf("GET /trace: invalid JSON mid-recording: %v", err)
						}
					}
					resp.Body.Close()
				}
			}(p)
		}
	}
	scrapeWG.Wait()
	close(stop)
	wg.Wait()
}

// TestObsEndpointsRejectNonGET pins the 405 contract: every obs-native
// endpoint answers non-GET methods with 405 and an Allow header, so a
// misconfigured POST-based remote-write scraper fails loudly instead of
// silently reading state.
func TestObsEndpointsRejectNonGET(t *testing.T) {
	rec := New(Config{Workers: 1})
	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()
	for _, p := range []string{"/", "/metrics", "/metrics.json", "/status", "/cluster", "/requests", "/trace", "/trace/summary"} {
		resp, err := http.Post(srv.URL+p, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", p, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s: Allow header %q, want GET", p, allow)
		}
	}
}
