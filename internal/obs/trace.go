package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one completed phase/step/superstep interval. Cat groups spans by
// emitter ("core", "pf", "pr", "dist", "checkpoint", "supervise"); Name is
// the span kind within the emitter ("phase", "top-down", "superstep", ...);
// Arg carries one span-specific magnitude (frontier size, cardinality,
// bytes) surfaced in the Chrome trace's args.
//
// Lane and Trace carry the cross-process dimensions: Lane 0 is the local
// process, lane k>0 is remote rank k-1 (spans shipped by a cluster worker
// and ingested by the coordinator land on their rank's lane, which becomes
// a separate process row in the Chrome trace); Trace is the run/request
// correlation id (0 = untagged).
type Span struct {
	Cat   string
	Name  string
	Start int64 // nanoseconds since the Unix epoch
	Dur   int64 // nanoseconds
	Arg   int64
	Lane  int32  // 0 = local process; k>0 = remote rank k-1
	Trace uint64 // run/request correlation id; 0 = none
}

// Tracer records spans into a bounded ring buffer: the newest TraceCapacity
// spans win and older ones are dropped (counted, never blocking). Recording
// is a mutex-guarded struct store — no allocation — and happens once per
// phase/step on driver goroutines, so the lock is uncontended in practice.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	total   uint64
	shipped uint64 // drain cursor: spans already taken by DrainInto
}

// newTracer builds a tracer with capacity spans of history.
func newTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 16384
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores one completed span. Nil-safe and allocation-free.
func (t *Tracer) Record(cat, name string, start time.Time, d time.Duration, arg int64) {
	if t == nil {
		return
	}
	t.put(Span{Cat: cat, Name: name, Start: start.UnixNano(), Dur: int64(d), Arg: arg})
}

// RecordTagged stores one completed span carrying the trace correlation id.
// Nil-safe and allocation-free.
func (t *Tracer) RecordTagged(cat, name string, start time.Time, d time.Duration, arg int64, trace uint64) {
	if t == nil {
		return
	}
	t.put(Span{Cat: cat, Name: name, Start: start.UnixNano(), Dur: int64(d), Arg: arg, Trace: trace})
}

// Ingest appends pre-built spans — typically shipped from a remote rank,
// with Lane set and Start already clock-adjusted by the caller. Nil-safe.
func (t *Tracer) Ingest(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for i := range spans {
		t.putLocked(spans[i])
	}
	t.mu.Unlock()
}

func (t *Tracer) put(s Span) {
	t.mu.Lock()
	t.putLocked(s)
	t.mu.Unlock()
}

func (t *Tracer) putLocked(s Span) {
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
}

// DrainInto copies spans recorded since the last drain into dst, advancing
// the drain cursor, and reports how many were copied plus how many pending
// spans were lost — either overwritten by the ring before the drain arrived
// or skipped because more than len(dst) were pending (drop-oldest: the
// newest spans always win). Allocation-free; telemetry shippers call it at
// superstep boundaries with a reused scratch slice.
func (t *Tracer) DrainInto(dst []Span) (n int, dropped uint64) {
	if t == nil || len(dst) == 0 {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	from := t.shipped
	// Spans older than total-len(ring) are already overwritten.
	if ringCap := uint64(len(t.ring)); t.total > ringCap && from < t.total-ringCap {
		dropped += t.total - ringCap - from
		from = t.total - ringCap
	}
	// Drop-oldest down to what dst can carry.
	if pending := t.total - from; pending > uint64(len(dst)) {
		dropped += pending - uint64(len(dst))
		from = t.total - uint64(len(dst))
	}
	for i := from; i < t.total; i++ {
		dst[n] = t.ring[i%uint64(len(t.ring))]
		n++
	}
	t.shipped = t.total
	return n, dropped
}

// Snapshot returns the retained spans in recording order and the number of
// older spans the ring has dropped.
func (t *Tracer) Snapshot() (spans []Span, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if t.total < uint64(n) {
		spans = make([]Span, t.total)
		copy(spans, t.ring[:t.total])
		return spans, 0
	}
	spans = make([]Span, 0, n)
	spans = append(spans, t.ring[t.next:]...)
	spans = append(spans, t.ring[:t.next]...)
	return spans, t.total - uint64(n)
}

// WriteChromeTrace renders the retained spans as Chrome trace-event JSON
// (the {"traceEvents": [...]} object form), loadable in about://tracing and
// Perfetto. Every span becomes one complete event ("ph":"X") with
// microsecond timestamps relative to the earliest span; categories map to
// stable tids so each emitter gets its own track, and lanes map to pids so
// every remote rank renders as its own process row ("rank k" process_name
// metadata) beside the local process. Spans tagged with a trace id carry it
// in args as a 16-hex string, the same form matchd returns in X-Request-Id.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, dropped := t.Snapshot()

	// Stable per-category track ids, assigned in sorted-category order.
	cats := make([]string, 0, 8)
	seen := make(map[string]int, 8)
	lanes := make(map[int32]bool, 8)
	for i := range spans {
		if _, ok := seen[spans[i].Cat]; !ok {
			seen[spans[i].Cat] = 0
			cats = append(cats, spans[i].Cat)
		}
		lanes[spans[i].Lane] = true
	}
	sort.Strings(cats)
	for i, c := range cats {
		seen[c] = i + 1
	}
	laneIDs := make([]int32, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	var t0 int64
	for i := range spans {
		if i == 0 || spans[i].Start < t0 {
			t0 = spans[i].Start
		}
	}

	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"displayTimeUnit":"ms","droppedSpans":`...)
	buf = strconv.AppendUint(buf, dropped, 10)
	buf = append(buf, `,"traceEvents":[`...)
	var err error
	first := true
	// Process-name metadata first: lane 0 is this process, lane k is rank k-1.
	for _, l := range laneIDs {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, `{"name":"process_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(l)+1, 10)
		buf = append(buf, `,"args":{"name":"`...)
		if l == 0 {
			buf = append(buf, `local`...)
		} else {
			buf = append(buf, `rank `...)
			buf = strconv.AppendInt(buf, int64(l)-1, 10)
		}
		buf = append(buf, `"}}`...)
	}
	for i := range spans {
		s := &spans[i]
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, s.Name)
		buf = append(buf, `,"cat":`...)
		buf = appendJSONString(buf, s.Cat)
		buf = append(buf, `,"ph":"X","ts":`...)
		buf = appendMicros(buf, s.Start-t0)
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, s.Dur)
		buf = append(buf, `,"pid":`...)
		buf = strconv.AppendInt(buf, int64(s.Lane)+1, 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(seen[s.Cat]), 10)
		buf = append(buf, `,"args":{"v":`...)
		buf = strconv.AppendInt(buf, s.Arg, 10)
		if s.Trace != 0 {
			buf = append(buf, `,"trace":"`...)
			buf = appendTraceHex(buf, s.Trace)
			buf = append(buf, '"')
		}
		buf = append(buf, `}}`...)
		if len(buf) >= 1<<15 {
			if _, err = w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// appendTraceHex appends the fixed-width 16-hex form of a trace id — the
// same textual form TraceHex returns and matchd sets in X-Request-Id.
func appendTraceHex(buf []byte, trace uint64) []byte {
	const hex = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		buf = append(buf, hex[(trace>>uint(shift))&0xf])
	}
	return buf
}

// appendMicros appends ns as a decimal microsecond value with millisecond
// precision kept ("12345.678").
func appendMicros(buf []byte, ns int64) []byte {
	neg := ns < 0
	if neg {
		ns = -ns
		buf = append(buf, '-')
	}
	buf = strconv.AppendInt(buf, ns/1e3, 10)
	frac := ns % 1e3
	if frac != 0 {
		buf = append(buf, '.')
		buf = append(buf, byte('0'+frac/100))
		buf = append(buf, byte('0'+frac/10%10))
		buf = append(buf, byte('0'+frac%10))
	}
	return buf
}

// appendJSONString appends s as a quoted JSON string. Span names and
// categories are compile-time identifiers, but escape defensively anyway.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, `\u00`...)
			const hex = "0123456789abcdef"
			buf = append(buf, hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// flameKey aggregates spans for the flame summary.
type flameKey struct {
	cat, name string
}

type flameRow struct {
	count           int64
	total, min, max int64
}

// WriteFlameSummary renders a human-readable aggregation of the retained
// spans: one line per (cat, name) with count, total, mean, min and max
// durations, sorted by total descending — the terminal stand-in for loading
// the Chrome trace.
func (t *Tracer) WriteFlameSummary(w io.Writer) error {
	spans, dropped := t.Snapshot()
	agg := make(map[flameKey]flameRow, 16)
	for i := range spans {
		k := flameKey{spans[i].Cat, spans[i].Name}
		r, ok := agg[k]
		d := spans[i].Dur
		if !ok || d < r.min {
			r.min = d
		}
		if d > r.max {
			r.max = d
		}
		r.count++
		r.total += d
		agg[k] = r
	}
	keys := make([]flameKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := agg[keys[i]], agg[keys[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	buf := make([]byte, 0, 256)
	buf = append(buf, "span summary ("...)
	buf = strconv.AppendInt(buf, int64(len(spans)), 10)
	buf = append(buf, " spans retained, "...)
	buf = strconv.AppendUint(buf, dropped, 10)
	buf = append(buf, " dropped)\n"...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	var err error
	for _, k := range keys {
		r := agg[k]
		buf = buf[:0]
		buf = append(buf, "  "...)
		buf = append(buf, k.cat...)
		buf = append(buf, '/')
		buf = append(buf, k.name...)
		buf = append(buf, ": count="...)
		buf = strconv.AppendInt(buf, r.count, 10)
		buf = append(buf, " total="...)
		buf = append(buf, time.Duration(r.total).String()...)
		buf = append(buf, " mean="...)
		buf = append(buf, time.Duration(r.total/r.count).String()...)
		buf = append(buf, " min="...)
		buf = append(buf, time.Duration(r.min).String()...)
		buf = append(buf, " max="...)
		buf = append(buf, time.Duration(r.max).String()...)
		buf = append(buf, '\n')
		if _, err = w.Write(buf); err != nil {
			return err
		}
	}
	return err
}
