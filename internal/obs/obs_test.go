package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *Recorder
	c := rec.Counter("x", "")
	g := rec.Gauge("x", "")
	h := rec.Histogram("x", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil recorder returned live handles")
	}
	c.Add(0, 1)
	g.Set(1)
	h.Observe(0, 1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles accumulated")
	}
	rec.Span("core", "phase", time.Now(), time.Second, 0)
	rec.RunStart("x")
	rec.SetGraph(1, 2, 3)
	rec.PhaseDone("x", 1, 2)
	rec.RunDone(true, 2)
	rec.RungStart("x")
	rec.RungEnd("x", "completed")
	rec.CheckpointSaved("p", 1, time.Second)
	if s := rec.Status(); s != (RunStatus{}) {
		t.Errorf("nil recorder status %+v", s)
	}
	if rec.Registry() != nil || rec.Tracer() != nil || rec.Workers() != 0 {
		t.Error("nil recorder exposed live internals")
	}
}

func TestRecorderStatusFlow(t *testing.T) {
	rec := New(Config{Workers: 4, TraceCapacity: 64})
	if rec.Workers() != 4 {
		t.Errorf("Workers = %d", rec.Workers())
	}
	rec.SetGraph(10, 20, 300)
	rec.RunStart("MS-BFS-Graft")
	s := rec.Status()
	if !s.Running || s.Complete || s.Algorithm != "MS-BFS-Graft" {
		t.Errorf("after RunStart: %+v", s)
	}
	if s.GraphRows != 10 || s.GraphCols != 20 || s.GraphEdges != 300 {
		t.Errorf("graph dims: %+v", s)
	}

	rec.PhaseDone("MS-BFS-Graft", 3, 1234)
	s = rec.Status()
	if s.Phase != 3 || s.Cardinality != 1234 {
		t.Errorf("after PhaseDone: %+v", s)
	}
	if got := rec.Gauge("graftmatch_run_phase", "").Value(); got != 3 {
		t.Errorf("phase gauge = %d", got)
	}
	if got := rec.Gauge("graftmatch_run_cardinality", "").Value(); got != 1234 {
		t.Errorf("cardinality gauge = %d", got)
	}

	rec.RungStart("PF")
	rec.RungEnd("PF", "completed")
	s = rec.Status()
	if s.Rung != "PF" || s.RungOutcome != "completed" {
		t.Errorf("rung status: %+v", s)
	}
	if got := rec.Counter("graftmatch_supervise_rung_transitions_total", "").Value(); got != 1 {
		t.Errorf("rung transitions = %d", got)
	}

	rec.CheckpointSaved("/tmp/x.gmck", 4096, 2*time.Millisecond)
	s = rec.Status()
	if s.LastCheckpoint != "/tmp/x.gmck" {
		t.Errorf("checkpoint status: %+v", s)
	}
	if got := rec.Counter("graftmatch_checkpoint_bytes_total", "").Value(); got != 4096 {
		t.Errorf("checkpoint bytes = %d", got)
	}

	rec.RunDone(true, 5555)
	s = rec.Status()
	if s.Running || !s.Complete || s.Cardinality != 5555 {
		t.Errorf("after RunDone: %+v", s)
	}
	if got := rec.Gauge("graftmatch_run_complete", "").Value(); got != 1 {
		t.Errorf("complete gauge = %d", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	rec := New(Config{Workers: 2, TraceCapacity: 16})
	rec.RunStart("PR")
	rec.Counter("graftmatch_test_total", "a test counter").Add(0, 9)
	rec.Span("core", "phase", time.Now(), time.Millisecond, 1)
	rec.PhaseDone("PR", 1, 50)

	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index missing endpoint list: %q", body)
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{"graftmatch_test_total 9", "graftmatch_run_phase 1", "graftmatch_run_cardinality 50"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get("/metrics.json")
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if snap.Counters["graftmatch_test_total"] != 9 {
		t.Errorf("/metrics.json counters = %v", snap.Counters)
	}

	body, _ = get("/status")
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status invalid: %v", err)
	}
	if st.Algorithm != "PR" || st.Phase != 1 || st.Cardinality != 50 || !st.Running {
		t.Errorf("/status = %+v", st)
	}

	body, _ = get("/trace")
	var ct chromeTrace
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
	if evs := spanEvents(ct); len(evs) != 1 || evs[0].Cat != "core" {
		t.Errorf("/trace events = %+v", ct.TraceEvents)
	}

	if body, _ = get("/trace/summary"); !strings.Contains(body, "core/phase") {
		t.Errorf("/trace/summary = %q", body)
	}

	body, _ = get("/debug/vars")
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars invalid: %v", err)
	}

	if body, _ = get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine = %.80q", body)
	}

	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d", resp.StatusCode)
	}
}

func TestRecorderDefaultSizing(t *testing.T) {
	rec := New(Config{})
	if rec.Workers() <= 0 {
		t.Errorf("Workers = %d", rec.Workers())
	}
	if len(rec.Tracer().ring) != 16384 {
		t.Errorf("default trace capacity = %d", len(rec.Tracer().ring))
	}
}
