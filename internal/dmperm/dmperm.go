// Package dmperm computes the Dulmage–Mendelsohn decomposition and the
// block triangular form (BTF) of a sparse matrix from a maximum cardinality
// matching of its bipartite graph — the motivating application of the paper
// (§I): once the BTF is obtained, sparse linear systems can be solved
// block-by-block.
//
// The coarse decomposition splits rows (X) and columns (Y) into the
// horizontal part H (reachable by alternating paths from unmatched rows),
// the vertical part V (reachable from unmatched columns), and the square
// part S, on which the matching is perfect. The fine decomposition finds
// the strongly connected components of the square part's pair digraph
// (Tarjan), yielding diagonal blocks in topological order.
package dmperm

import (
	"fmt"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

const none = matching.None

// CoarseSet labels a vertex's coarse DM block.
type CoarseSet int8

// Coarse block labels.
const (
	Horizontal CoarseSet = iota // reachable from unmatched rows
	Square                      // perfectly matched core
	Vertical                    // reachable from unmatched columns
)

// Decomposition is the result of DM decomposition of an nx×ny sparse
// pattern.
type Decomposition struct {
	// RowPerm and ColPerm map new position → original index. Rows are
	// ordered H, S (by block), V; columns likewise.
	RowPerm []int32
	ColPerm []int32

	// CoarseRow and CoarseCol give the coarse label of each original
	// row/column.
	CoarseRow []CoarseSet
	CoarseCol []CoarseSet

	// Blocks are the fine (square-part) diagonal blocks in topological
	// order: Blocks[k] is the size of block k in matched pairs. The
	// square part occupies rows HRows..HRows+SSize-1 of RowPerm.
	Blocks []int32

	// HRows, HCols are the sizes of the horizontal part; VRows, VCols of
	// the vertical part; SSize the number of matched pairs in the square
	// part.
	HRows, HCols int32
	VRows, VCols int32
	SSize        int32
}

// NumBlocks returns the number of fine diagonal blocks.
func (d *Decomposition) NumBlocks() int { return len(d.Blocks) }

// Decompose computes the DM decomposition of g given a maximum matching m.
// It returns an error if m is not a valid matching of g. (Maximality is
// assumed; a non-maximum matching produces a coarse split that is not the
// canonical DM one.)
func Decompose(g *bipartite.Graph, m *matching.Matching) (*Decomposition, error) {
	if err := m.Verify(g); err != nil {
		return nil, err
	}
	nx, ny := g.NX(), g.NY()
	d := &Decomposition{
		CoarseRow: make([]CoarseSet, nx),
		CoarseCol: make([]CoarseSet, ny),
	}

	// Coarse: H from unmatched rows via alternating reachability.
	hX, hY, _ := matching.AlternatingReach(g, m)
	// V from unmatched columns: alternating reachability in the transpose.
	tm := &matching.Matching{MateX: m.MateY, MateY: m.MateX}
	vY, vX, _ := matching.AlternatingReach(g.Transpose(), tm)

	for x := int32(0); x < nx; x++ {
		switch {
		case hX[x]:
			d.CoarseRow[x] = Horizontal
			d.HRows++
		case vX[x]:
			d.CoarseRow[x] = Vertical
			d.VRows++
		default:
			d.CoarseRow[x] = Square
		}
	}
	for y := int32(0); y < ny; y++ {
		switch {
		case hY[y]:
			d.CoarseCol[y] = Horizontal
			d.HCols++
		case vY[y]:
			d.CoarseCol[y] = Vertical
			d.VCols++
		default:
			d.CoarseCol[y] = Square
		}
	}

	// Sanity: H and V cannot overlap when m is maximum (an alternating
	// path from an unmatched row to an unmatched column would augment).
	for x := int32(0); x < nx; x++ {
		if hX[x] && vX[x] {
			return nil, fmt.Errorf("dmperm: row %d in both H and V; matching is not maximum", x)
		}
	}

	// Square part: matched pairs entirely inside S.
	pairs := make([]int32, 0) // X ids of square matched pairs
	pairIndex := make([]int32, nx)
	for i := range pairIndex {
		pairIndex[i] = none
	}
	for x := int32(0); x < nx; x++ {
		if d.CoarseRow[x] != Square {
			continue
		}
		y := m.MateX[x]
		if y == none || d.CoarseCol[y] != Square {
			return nil, fmt.Errorf("dmperm: square row %d not matched inside square part", x)
		}
		pairIndex[x] = int32(len(pairs))
		pairs = append(pairs, x)
	}
	d.SSize = int32(len(pairs))

	// Fine: SCCs of the pair digraph. Node u (pair (x_u, y_u)) has an arc
	// to node v when x_u is adjacent to y_v, i.e. A[r_u, c_v] ≠ 0.
	sccOf, sccSizes := tarjan(len(pairs), func(u int32, visit func(int32)) {
		x := pairs[u]
		for _, y := range g.NbrX(x) {
			if d.CoarseCol[y] != Square {
				continue
			}
			v := pairIndex[m.MateY[y]]
			if v != u {
				visit(v)
			}
		}
	})

	// Tarjan emits SCCs in reverse topological order; reverse for BTF
	// (arcs point from earlier to later blocks → block upper triangular).
	nb := len(sccSizes)
	blockOf := make([]int32, nb)
	d.Blocks = make([]int32, nb)
	for i := 0; i < nb; i++ {
		blockOf[i] = int32(nb - 1 - i)
		d.Blocks[nb-1-i] = sccSizes[i]
	}

	// Assemble permutations: H rows, then square pairs grouped by block in
	// topological order, then V rows. Columns symmetric (square columns
	// take the mate of the row at the same position, keeping the matching
	// on the diagonal of the square part).
	d.RowPerm = make([]int32, 0, nx)
	d.ColPerm = make([]int32, 0, ny)
	for x := int32(0); x < nx; x++ {
		if d.CoarseRow[x] == Horizontal {
			d.RowPerm = append(d.RowPerm, x)
		}
	}
	for y := int32(0); y < ny; y++ {
		if d.CoarseCol[y] == Horizontal {
			d.ColPerm = append(d.ColPerm, y)
		}
	}
	// Bucket pairs by block.
	offsets := make([]int32, nb+1)
	for b := 0; b < nb; b++ {
		offsets[b+1] = offsets[b] + d.Blocks[b]
	}
	square := make([]int32, len(pairs))
	fill := make([]int32, nb)
	for u, x := range pairs {
		b := blockOf[sccOf[u]]
		square[offsets[b]+fill[b]] = x
		fill[b]++
	}
	for _, x := range square {
		d.RowPerm = append(d.RowPerm, x)
		d.ColPerm = append(d.ColPerm, m.MateX[x])
	}
	for x := int32(0); x < nx; x++ {
		if d.CoarseRow[x] == Vertical {
			d.RowPerm = append(d.RowPerm, x)
		}
	}
	for y := int32(0); y < ny; y++ {
		if d.CoarseCol[y] == Vertical {
			d.ColPerm = append(d.ColPerm, y)
		}
	}
	return d, nil
}

// tarjan computes strongly connected components of a digraph with n nodes
// given by an adjacency callback, iteratively (no recursion). It returns
// the component id of each node and the component sizes, components in
// reverse topological order (standard Tarjan emission order).
func tarjan(n int, forEachSucc func(u int32, visit func(int32))) (sccOf []int32, sizes []int32) {
	sccOf = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = none
		sccOf[i] = none
	}
	var stack []int32 // Tarjan vertex stack
	var counter int32

	type frame struct {
		u     int32
		succs []int32
		next  int
	}
	var callStack []frame

	gather := func(u int32) []int32 {
		var s []int32
		forEachSucc(u, func(v int32) { s = append(s, v) })
		return s
	}

	for start := int32(0); start < int32(n); start++ {
		if index[start] != none {
			continue
		}
		callStack = callStack[:0]
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		callStack = append(callStack, frame{u: start, succs: gather(start)})

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < len(f.succs) {
				v := f.succs[f.next]
				f.next++
				if index[v] == none {
					index[v] = counter
					low[v] = counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					callStack = append(callStack, frame{u: v, succs: gather(v)})
				} else if onStack[v] && index[v] < low[f.u] {
					low[f.u] = index[v]
				}
				continue
			}
			// Post-visit of f.u.
			u := f.u
			if low[u] == index[u] {
				id := int32(len(sizes))
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccOf[w] = id
					size++
					if w == u {
						break
					}
				}
				sizes = append(sizes, size)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[u] < low[parent.u] {
					low[parent.u] = low[u]
				}
			}
		}
	}
	return sccOf, sizes
}
