package dmperm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/exps"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

// maxMatch computes a maximum matching for tests.
func maxMatch(g *bipartite.Graph) *matching.Matching {
	m := matchinit.KarpSipser(g, 1)
	hk.Run(g, m)
	return m
}

func TestSquarePerfectMatrix(t *testing.T) {
	// Block upper triangular 2-block matrix: block {0,1} and block {2}.
	g := bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 1, Y: 1}, // 2x2 block
		{X: 0, Y: 2}, // upper off-diagonal entry
		{X: 2, Y: 2}, // 1x1 block
	})
	m := maxMatch(g)
	d, err := Decompose(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.HRows != 0 || d.VRows != 0 || d.SSize != 3 {
		t.Fatalf("coarse sizes: %+v", d)
	}
	if d.NumBlocks() != 2 {
		t.Fatalf("blocks = %v, want 2 blocks", d.Blocks)
	}
	checkBTF(t, g, m, d)
}

func TestIrreducibleMatrix(t *testing.T) {
	// A cycle couples everything: single block.
	g := bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 0},
	})
	d, err := Decompose(g, maxMatch(g))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 1 || d.Blocks[0] != 3 {
		t.Fatalf("blocks = %v, want one block of 3", d.Blocks)
	}
}

func TestDiagonalMatrix(t *testing.T) {
	g := bipartite.MustFromEdges(4, 4, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3},
	})
	d, err := Decompose(g, maxMatch(g))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 4 {
		t.Fatalf("diagonal matrix must give 4 singleton blocks, got %v", d.Blocks)
	}
}

func TestCoarseParts(t *testing.T) {
	// 3 rows, 2 cols: rows over-determined → some rows vertical...
	// Rows 0,1 connect to col 0; row 2 to col 1. Max matching = 2;
	// unmatched row reaches H.
	g := bipartite.MustFromEdges(3, 2, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 1},
	})
	m := maxMatch(g)
	d, err := Decompose(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// One unmatched row: H contains it plus everything alternating-
	// reachable (col 0 and its mate).
	if d.HRows != 2 || d.HCols != 1 {
		t.Fatalf("H part: rows=%d cols=%d, want 2,1", d.HRows, d.HCols)
	}
	if d.VRows != 0 || d.VCols != 0 {
		t.Fatalf("V part: rows=%d cols=%d, want 0,0", d.VRows, d.VCols)
	}
	if d.SSize != 1 {
		t.Fatalf("S size = %d, want 1", d.SSize)
	}
}

func TestRejectsInvalidMatching(t *testing.T) {
	g := bipartite.MustFromEdges(2, 2, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 1}})
	bad := matching.New(2, 2)
	bad.MateX[0] = 1 // asymmetric
	if _, err := Decompose(g, bad); err == nil {
		t.Fatal("want error for invalid matching")
	}
}

// checkBTF verifies the permuted square part is block upper triangular with
// the matching on the diagonal.
func checkBTF(t *testing.T, g *bipartite.Graph, m *matching.Matching, d *Decomposition) {
	t.Helper()
	// Positions of each original row/col in the permuted order.
	rowPos := make(map[int32]int)
	for i, x := range d.RowPerm {
		rowPos[x] = i
	}
	colPos := make(map[int32]int)
	for i, y := range d.ColPerm {
		colPos[y] = i
	}
	// Square part occupies [HRows, HRows+SSize).
	sLo := int(d.HRows)
	sHi := sLo + int(d.SSize)
	// Diagonal of the square part is matched.
	for i := sLo; i < sHi; i++ {
		x := d.RowPerm[i]
		y := d.ColPerm[i-sLo+int(d.HCols)]
		if m.MateX[x] != y {
			t.Fatalf("square diagonal position %d is not a matched pair (%d,%d)", i, x, y)
		}
	}
	// Block boundaries in permuted square coordinates.
	blockOfPos := make([]int, d.SSize)
	{
		pos := 0
		for b, size := range d.Blocks {
			for k := int32(0); k < size; k++ {
				blockOfPos[pos] = b
				pos++
			}
		}
	}
	// No entry strictly below the block diagonal inside the square part:
	// for edge (x,y) with both in S, block(row) must be ≤ block(col).
	for x := int32(0); x < g.NX(); x++ {
		if d.CoarseRow[x] != Square {
			continue
		}
		ri := rowPos[x] - sLo
		for _, y := range g.NbrX(x) {
			if d.CoarseCol[y] != Square {
				continue
			}
			ci := colPos[y] - int(d.HCols)
			if blockOfPos[ri] > blockOfPos[ci] {
				t.Fatalf("entry (%d,%d) below block diagonal: row block %d > col block %d",
					x, y, blockOfPos[ri], blockOfPos[ci])
			}
		}
	}
}

func TestBTFPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(40) + 5)
		b := bipartite.NewBuilder(n, n)
		// Guarantee structural full rank via the diagonal, then sprinkle.
		for i := int32(0); i < n; i++ {
			_ = b.AddEdge(i, i)
		}
		for k := 0; k < int(n)*3; k++ {
			_ = b.AddEdge(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))))
		}
		g := b.Build()
		m := maxMatch(g)
		d, err := Decompose(g, m)
		if err != nil {
			return false
		}
		if d.SSize != n || d.HRows != 0 || d.VRows != 0 {
			return false
		}
		// Block sizes sum to n.
		var sum int32
		for _, s := range d.Blocks {
			sum += s
		}
		if sum != n {
			return false
		}
		// Permutations are bijections.
		seen := make([]bool, n)
		for _, x := range d.RowPerm {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		checkBTF(t, g, m, d)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRectangularDecomposition(t *testing.T) {
	g := gen.ER(60, 40, 250, 3)
	m := maxMatch(g)
	d, err := Decompose(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(d.RowPerm)) != 60-countIsolatedRows(d) {
		// RowPerm includes every row exactly once, including isolated ones
		// (they land in H as unmatched). Just check bijection below.
		t.Logf("perm len %d", len(d.RowPerm))
	}
	if int32(len(d.RowPerm)) != g.NX() || int32(len(d.ColPerm)) != g.NY() {
		t.Fatalf("perm sizes %d,%d want %d,%d", len(d.RowPerm), len(d.ColPerm), g.NX(), g.NY())
	}
	seen := make([]bool, g.NX())
	for _, x := range d.RowPerm {
		if seen[x] {
			t.Fatal("row perm not a bijection")
		}
		seen[x] = true
	}
	if d.HRows+d.SSize+d.VRows != g.NX() {
		t.Fatalf("row parts %d+%d+%d != %d", d.HRows, d.SSize, d.VRows, g.NX())
	}
	if d.HCols+d.SSize+d.VCols != g.NY() {
		t.Fatalf("col parts %d+%d+%d != %d", d.HCols, d.SSize, d.VCols, g.NY())
	}
}

func countIsolatedRows(d *Decomposition) int32 { return 0 }

func TestTarjanChain(t *testing.T) {
	// 0 → 1 → 2: three SCCs in topological order after reversal.
	succ := map[int32][]int32{0: {1}, 1: {2}, 2: {}}
	sccOf, sizes := tarjan(3, func(u int32, visit func(int32)) {
		for _, v := range succ[u] {
			visit(v)
		}
	})
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Tarjan emits sinks first: 2's SCC id < 1's < 0's.
	if !(sccOf[2] < sccOf[1] && sccOf[1] < sccOf[0]) {
		t.Fatalf("emission order wrong: %v", sccOf)
	}
}

func TestTarjanCycleAndSelfLoops(t *testing.T) {
	// 0↔1 cycle plus isolated 2.
	succ := map[int32][]int32{0: {1}, 1: {0}, 2: {}}
	sccOf, sizes := tarjan(3, func(u int32, visit func(int32)) {
		for _, v := range succ[u] {
			visit(v)
		}
	})
	if len(sizes) != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sccOf[0] != sccOf[1] || sccOf[0] == sccOf[2] {
		t.Fatalf("sccOf = %v", sccOf)
	}
}

func TestTarjanLargeChainIterative(t *testing.T) {
	// 100k-node chain: recursion would overflow; must complete.
	n := 100000
	sccOf, sizes := tarjan(n, func(u int32, visit func(int32)) {
		if int(u)+1 < n {
			visit(u + 1)
		}
	})
	if len(sizes) != n {
		t.Fatalf("want %d SCCs, got %d", n, len(sizes))
	}
	_ = sccOf
}

// TestSuiteDecompositionInvariants decomposes every synthetic suite
// instance and checks the structural invariants of DM theory.
func TestSuiteDecompositionInvariants(t *testing.T) {
	for _, inst := range exps.Suite(exps.Small) {
		g := inst.Graph
		m := maxMatch(g)
		d, err := Decompose(g, m)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		card := m.Cardinality()
		// Every unmatched row is horizontal; every unmatched column is
		// vertical. |H rows| - |H cols| = #unmatched rows, symmetric for V.
		unmatchedRows := int64(g.NX()) - card
		unmatchedCols := int64(g.NY()) - card
		if int64(d.HRows-d.HCols) != unmatchedRows {
			t.Fatalf("%s: HRows-HCols = %d, want %d", inst.Name, d.HRows-d.HCols, unmatchedRows)
		}
		if int64(d.VCols-d.VRows) != unmatchedCols {
			t.Fatalf("%s: VCols-VRows = %d, want %d", inst.Name, d.VCols-d.VRows, unmatchedCols)
		}
		// Part sizes tile the vertex sets.
		if d.HRows+d.SSize+d.VRows != g.NX() || d.HCols+d.SSize+d.VCols != g.NY() {
			t.Fatalf("%s: parts do not tile", inst.Name)
		}
		// Fine blocks tile the square part.
		var sum int32
		for _, b := range d.Blocks {
			if b <= 0 {
				t.Fatalf("%s: empty block", inst.Name)
			}
			sum += b
		}
		if sum != d.SSize {
			t.Fatalf("%s: blocks sum %d != SSize %d", inst.Name, sum, d.SSize)
		}
		// Permutations are bijections.
		seenR := make([]bool, g.NX())
		for _, x := range d.RowPerm {
			if seenR[x] {
				t.Fatalf("%s: duplicate row %d", inst.Name, x)
			}
			seenR[x] = true
		}
		seenC := make([]bool, g.NY())
		for _, y := range d.ColPerm {
			if seenC[y] {
				t.Fatalf("%s: duplicate col %d", inst.Name, y)
			}
			seenC[y] = true
		}
		checkBTF(t, g, m, d)
	}
}

// TestNoEdgesDecomposition: a matrix with no entries has everything
// horizontal+vertical and an empty square part.
func TestNoEdgesDecomposition(t *testing.T) {
	g := bipartite.MustFromEdges(3, 4, nil)
	d, err := Decompose(g, matching.New(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.SSize != 0 || d.NumBlocks() != 0 {
		t.Fatalf("square part of empty matrix: %+v", d)
	}
	if d.HRows != 3 || d.VCols != 4 {
		t.Fatalf("coarse parts: %+v", d)
	}
}

// TestPermutedMatrixIsBTF applies the decomposition's permutations with
// bipartite.Permute and verifies the resulting matrix structure directly:
// inside the square part no entry lies below the block diagonal, an
// independent re-derivation of checkBTF through the public permutation API.
func TestPermutedMatrixIsBTF(t *testing.T) {
	g := gen.Banded(80, 3, 0.8, 5)
	m := maxMatch(g)
	d, err := Decompose(g, m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bipartite.Permute(g, d.RowPerm, d.ColPerm)
	if err != nil {
		t.Fatal(err)
	}
	// Block boundary per permuted square position.
	blockOf := make([]int, d.SSize)
	pos := 0
	for b, size := range d.Blocks {
		for k := int32(0); k < size; k++ {
			blockOf[pos] = b
			pos++
		}
	}
	sRowLo, sColLo := int32(d.HRows), int32(d.HCols)
	for i := int32(0); i < d.SSize; i++ {
		r := sRowLo + i
		for _, c := range p.NbrX(r) {
			j := c - sColLo
			if j < 0 || j >= d.SSize {
				continue // entry couples into H or V parts
			}
			if blockOf[i] > blockOf[j] {
				t.Fatalf("permuted entry (%d,%d) below block diagonal", r, c)
			}
		}
		// Diagonal entry exists (the matched pair).
		if !p.HasEdge(r, sColLo+i) {
			t.Fatalf("square diagonal position %d empty after permutation", i)
		}
	}
}
