package ssbfs

import (
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestBasicInstances(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"path", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}), 3},
		{"star", bipartite.MustFromEdges(4, 1, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}), 1},
	}
	for _, c := range cases {
		m := matching.New(c.g.NX(), c.g.NY())
		stats := Run(c.g, m)
		if m.Cardinality() != c.want {
			t.Fatalf("%s: %d, want %d (%v)", c.name, m.Cardinality(), c.want, stats)
		}
		if err := matching.VerifyMaximum(c.g, m); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestMatchesHopcroftKarp(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(120, 110, 500, seed)
		a := matchinit.KarpSipser(g, seed)
		b := a.Clone()
		Run(g, a)
		hk.Run(g, b)
		return a.Cardinality() == b.Cardinality() && matching.VerifyMaximum(g, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPruningReducesWork: on a graph with low matching number, SS-BFS from
// an empty matching must traverse far fewer edges than total reachable work
// because failed trees are hidden (the §II-C property).
func TestPruningReducesWork(t *testing.T) {
	g := gen.RankDeficient(1000, 1000, 200, 4, 3)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m)
	if m.Cardinality() != 200 {
		t.Fatalf("cardinality %d, want 200", m.Cardinality())
	}
	// 800 X vertices fail. Without pruning each failure would rescan the
	// whole deficient core (≈ n·(extra+1) edges each). With pruning the
	// total must stay well under that quadratic blowup.
	noPruneLowerBound := int64(800) * g.NumEdges() / 4
	if stats.EdgesTraversed >= noPruneLowerBound {
		t.Fatalf("traversed %d edges; pruning seems broken (bound %d)", stats.EdgesTraversed, noPruneLowerBound)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.ER(100, 100, 300, 2)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m)
	if stats.Algorithm != "SS-BFS" {
		t.Fatalf("name %q", stats.Algorithm)
	}
	if stats.FinalCardinality != m.Cardinality() || stats.InitialCardinality != 0 {
		t.Fatalf("cardinalities wrong: %+v", stats)
	}
	if stats.AugPaths != stats.FinalCardinality {
		t.Fatalf("from empty matching, augpaths %d must equal |M| %d", stats.AugPaths, stats.FinalCardinality)
	}
	if stats.AugPaths > 0 && stats.AugPathLen < stats.AugPaths {
		t.Fatalf("path lengths too small: %+v", stats)
	}
	if stats.Phases == 0 || stats.EdgesTraversed == 0 {
		t.Fatalf("missing accounting: %+v", stats)
	}
}
