// Package ssbfs implements the single-source BFS matching baseline
// (Algorithm 1 with BFS searches). Its defining property (§II-C): when a
// search tree rooted at x0 yields no augmenting path, the visited flags of
// the tree's Y vertices are NOT cleared, permanently hiding the tree from
// future searches — on graphs with low matching number this prunes a large
// share of the work, which is why SS-BFS traverses the fewest edges on that
// class (Fig. 1a).
package ssbfs

import (
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

const none = matching.None

// Run computes a maximum cardinality matching by single-source BFS
// augmentation, updating m in place. Serial (SS algorithms do not admit
// the fine-grained parallelism of MS algorithms; §II-C).
func Run(g *bipartite.Graph, m *matching.Matching) *matching.Stats {
	stats := &matching.Stats{Algorithm: "SS-BFS", Threads: 1}
	stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	nx, ny := int(g.NX()), int(g.NY())
	visited := make([]bool, ny)
	parentY := make([]int32, ny)
	frontier := make([]int32, 0, nx)
	next := make([]int32, 0, nx)
	touched := make([]int32, 0, ny) // Y vertices visited by the current search

	for x0 := int32(0); x0 < int32(nx); x0++ {
		if m.MateX[x0] != none {
			continue
		}
		stats.Phases++
		frontier = frontier[:0]
		touched = touched[:0]
		frontier = append(frontier, x0)
		var endY int32 = none

	search:
		for len(frontier) > 0 {
			next = next[:0]
			for _, x := range frontier {
				nbr := g.NbrX(x)
				stats.EdgesTraversed += int64(len(nbr))
				for _, y := range nbr {
					if visited[y] {
						continue
					}
					visited[y] = true
					parentY[y] = x
					touched = append(touched, y)
					mate := m.MateY[y]
					if mate == none {
						endY = y
						break search
					}
					next = append(next, mate)
				}
			}
			frontier, next = next, frontier
		}

		if endY == none {
			// No augmenting path from x0: keep the tree's visited flags
			// set forever (the SS pruning property).
			continue
		}
		// Augment along parent/mate pointers and clear this search's
		// visited flags so its vertices remain available.
		length := int64(-1)
		y := endY
		for {
			x := parentY[y]
			prev := m.MateX[x]
			m.Match(x, y)
			length += 2
			if x == x0 {
				break
			}
			y = prev
		}
		stats.AugPaths++
		stats.AugPathLen += length
		for _, y := range touched {
			visited[y] = false
		}
	}

	stats.Runtime = time.Since(start)
	stats.FinalCardinality = m.Cardinality()
	stats.Complete = true
	return stats
}
