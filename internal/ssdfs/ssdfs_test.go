package ssdfs

import (
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/ssbfs"
)

func TestBasicInstances(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"path", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}), 3},
		{"complete2x3", bipartite.MustFromEdges(2, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: 2}}), 2},
	}
	for _, c := range cases {
		m := matching.New(c.g.NX(), c.g.NY())
		Run(c.g, m)
		if m.Cardinality() != c.want {
			t.Fatalf("%s: %d, want %d", c.name, m.Cardinality(), c.want)
		}
		if err := matching.VerifyMaximum(c.g, m); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestMatchesHopcroftKarp(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(120, 130, 550, seed)
		a := matchinit.KarpSipser(g, seed)
		b := a.Clone()
		Run(g, a)
		hk.Run(g, b)
		return a.Cardinality() == b.Cardinality() && matching.VerifyMaximum(g, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDFSFindsLongerPathsThanBFS reproduces the Fig. 1(c) observation:
// DFS-based search finds longer augmenting paths than BFS-based search on
// graphs with room to wander.
func TestDFSFindsLongerPathsThanBFS(t *testing.T) {
	var dfsLen, bfsLen, dfsPaths, bfsPaths int64
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ER(400, 400, 1800, seed)
		md := matching.New(g.NX(), g.NY())
		sd := Run(g, md)
		mb := matching.New(g.NX(), g.NY())
		sb := ssbfs.Run(g, mb)
		dfsLen += sd.AugPathLen
		dfsPaths += sd.AugPaths
		bfsLen += sb.AugPathLen
		bfsPaths += sb.AugPaths
	}
	avgDFS := float64(dfsLen) / float64(dfsPaths)
	avgBFS := float64(bfsLen) / float64(bfsPaths)
	if avgDFS < avgBFS {
		t.Fatalf("expected DFS paths ≥ BFS paths on average: dfs=%.2f bfs=%.2f", avgDFS, avgBFS)
	}
}

func TestDeepGraphNoStackOverflow(t *testing.T) {
	// A path graph pre-matched from the "wrong" side leaves exactly one
	// unmatched X whose only augmenting path walks the entire graph —
	// maximal DFS depth in a single search. The implementation is
	// iterative so this must not overflow (a recursive DFS would need
	// ~200k frames).
	n := int32(200000)
	var edges []bipartite.Edge
	for i := int32(0); i < n; i++ {
		edges = append(edges, bipartite.Edge{X: i, Y: i})
		if i+1 < n {
			edges = append(edges, bipartite.Edge{X: i + 1, Y: i})
		}
	}
	g := bipartite.MustFromEdges(n, n, edges)
	m := matching.New(n, n)
	for i := int32(0); i+1 < n; i++ {
		m.Match(i+1, i) // leaves x0 and y_{n-1} unmatched
	}
	stats := Run(g, m)
	if m.Cardinality() != int64(n) {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), n)
	}
	if stats.AugPathLen != int64(2*n-1) {
		t.Fatalf("augmenting path length %d, want %d", stats.AugPathLen, 2*n-1)
	}
}
