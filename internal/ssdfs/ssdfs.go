// Package ssdfs implements the single-source DFS matching baseline
// (Algorithm 1 with depth-first searches). Like SS-BFS it permanently
// prunes failed search trees; unlike the BFS variants it tends to find long
// augmenting paths (Fig. 1c).
package ssdfs

import (
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

const none = matching.None

// Run computes a maximum cardinality matching by single-source DFS
// augmentation, updating m in place.
func Run(g *bipartite.Graph, m *matching.Matching) *matching.Stats {
	stats := &matching.Stats{Algorithm: "SS-DFS", Threads: 1}
	stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	nx, ny := int(g.NX()), int(g.NY())
	visited := make([]bool, ny)
	touched := make([]int32, 0, ny)

	// Iterative DFS over X vertices. pathX[d] is the X vertex at depth d;
	// iter[d] is the index of the next neighbor of pathX[d] to scan;
	// pathY[d] is the Y vertex chosen under pathX[d] (once matched).
	pathX := make([]int32, 0, nx)
	pathY := make([]int32, 0, nx)
	iter := make([]int64, 0, nx)

	for x0 := int32(0); x0 < int32(nx); x0++ {
		if m.MateX[x0] != none {
			continue
		}
		stats.Phases++
		touched = touched[:0]
		pathX = pathX[:0]
		pathY = pathY[:0]
		iter = iter[:0]
		pathX = append(pathX, x0)
		pathY = append(pathY, none)
		iter = append(iter, 0)
		found := false

		for len(pathX) > 0 {
			d := len(pathX) - 1
			x := pathX[d]
			nbr := g.NbrX(x)
			if iter[d] >= int64(len(nbr)) {
				// Exhausted x: backtrack.
				pathX = pathX[:d]
				pathY = pathY[:d]
				iter = iter[:d]
				continue
			}
			y := nbr[iter[d]]
			iter[d]++
			stats.EdgesTraversed++
			if visited[y] {
				continue
			}
			visited[y] = true
			touched = append(touched, y)
			pathY[d] = y
			mate := m.MateY[y]
			if mate == none {
				found = true
				break
			}
			pathX = append(pathX, mate)
			pathY = append(pathY, none)
			iter = append(iter, 0)
		}

		if !found {
			continue // prune: visited flags of the failed tree stay set
		}
		// Augment along the DFS stack: (pathX[0], pathY[0], ..., pathY[d]).
		for d := 0; d < len(pathX); d++ {
			m.Match(pathX[d], pathY[d])
		}
		stats.AugPaths++
		stats.AugPathLen += int64(2*len(pathX) - 1)
		for _, y := range touched {
			visited[y] = false
		}
	}

	stats.Runtime = time.Since(start)
	stats.FinalCardinality = m.Cardinality()
	stats.Complete = true
	return stats
}
