package matchinit

import (
	"sync/atomic"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
	"graftmatch/internal/par"
)

// reserved marks an X vertex whose owning worker is currently trying to
// match it; it is never left in the mate array.
const reserved int32 = -2

// pksWorker is the per-worker state of ParallelKarpSipser: a private stack
// of discovered degree-1 vertices (X encoded as v ≥ 0, Y as ^v) drained
// immediately after every match, which preserves the serial algorithm's
// match-then-cascade interleaving inside each worker.
type pksWorker struct {
	stack []int32
	// Pad to one full cache line: the stack header is rewritten on every
	// push/pop, and adjacent workers' headers in the workers slice must
	// not share a line.
	_ [40]byte
}

// ParallelKarpSipser computes a maximal matching with a shared-memory
// relaxation of Karp–Sipser (after Azad & Buluç's parallel cardinality
// heuristics). Degrees are maintained with atomic decrements; pair claims
// are linearized by CAS on the mate arrays; each worker cascades the
// degree-1 rule depth-first on its own stack the moment a match creates new
// degree-1 vertices. The result is maximal and typically within a percent
// of serial Karp–Sipser, but not deterministic across thread counts.
func ParallelKarpSipser(g *bipartite.Graph, p int) *matching.Matching {
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	nx, ny := int(g.NX()), int(g.NY())
	m := matching.New(g.NX(), g.NY())
	mateX, mateY := m.MateX, m.MateY

	degX := make([]int32, nx)
	degY := make([]int32, ny)
	par.For(p, nx, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			degX[i] = int32(g.DegX(int32(i)))
		}
	})
	par.For(p, ny, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			degY[i] = int32(g.DegY(int32(i)))
		}
	})

	workers := make([]pksWorker, p)

	// matchPair finalizes (x, y) after winning the mateY CAS: records the
	// X side and decrements neighbor degrees, pushing new degree-1
	// vertices onto the worker's cascade stack.
	matchPair := func(st *pksWorker, x, y int32) {
		atomic.StoreInt32(&mateX[x], y)
		for _, yy := range g.NbrX(x) {
			if atomic.LoadInt32(&mateY[yy]) == matching.None {
				if atomic.AddInt32(&degY[yy], -1) == 1 {
					st.stack = append(st.stack, ^yy)
				}
			}
		}
		for _, xx := range g.NbrY(y) {
			if atomic.LoadInt32(&mateX[xx]) == matching.None {
				if atomic.AddInt32(&degX[xx], -1) == 1 {
					st.stack = append(st.stack, xx)
				}
			}
		}
	}

	// tryMatchX reserves x, then claims its first free neighbor.
	tryMatchX := func(st *pksWorker, x int32) {
		if !atomic.CompareAndSwapInt32(&mateX[x], matching.None, reserved) {
			return // matched or being matched by another worker
		}
		for _, y := range g.NbrX(x) {
			if atomic.LoadInt32(&mateY[y]) != matching.None {
				continue
			}
			if atomic.CompareAndSwapInt32(&mateY[y], matching.None, x) {
				matchPair(st, x, y)
				return
			}
		}
		atomic.StoreInt32(&mateX[x], matching.None) // no free neighbor
	}

	// tryMatchY claims a free X neighbor for y; the X-side reservation is
	// the single linearization point for both directions.
	tryMatchY := func(st *pksWorker, y int32) {
		if atomic.LoadInt32(&mateY[y]) != matching.None {
			return
		}
		for _, x := range g.NbrY(y) {
			if atomic.LoadInt32(&mateX[x]) != matching.None {
				continue
			}
			if !atomic.CompareAndSwapInt32(&mateX[x], matching.None, reserved) {
				continue
			}
			if atomic.CompareAndSwapInt32(&mateY[y], matching.None, x) {
				matchPair(st, x, y)
				return
			}
			// y was taken while we held x; release x and stop.
			atomic.StoreInt32(&mateX[x], matching.None)
			return
		}
	}

	// drain cascades the worker's private degree-1 stack to exhaustion.
	drain := func(st *pksWorker) {
		for len(st.stack) > 0 {
			v := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			if v >= 0 {
				if atomic.LoadInt32(&degX[v]) == 1 {
					tryMatchX(st, v)
				}
			} else {
				y := ^v
				if atomic.LoadInt32(&degY[y]) == 1 {
					tryMatchY(st, y)
				}
			}
		}
	}

	// Pass 1: the initial degree-1 vertices, cascading locally.
	par.ForDynamic(p, nx+ny, 512, func(w int, lo, hi int) {
		st := &workers[w]
		for i := lo; i < hi; i++ {
			if i < nx {
				if degX[i] == 1 {
					st.stack = append(st.stack, int32(i))
				}
			} else if degY[i-nx] == 1 {
				st.stack = append(st.stack, ^int32(i-nx))
			}
			drain(st)
		}
	})

	// Pass 2: remaining vertices in index order, still cascading after
	// every match (the serial algorithm's phase-2 interleaving).
	par.ForDynamic(p, nx, 64, func(w int, lo, hi int) {
		st := &workers[w]
		for i := lo; i < hi; i++ {
			x := int32(i)
			if atomic.LoadInt32(&mateX[x]) == matching.None {
				tryMatchX(st, x)
				drain(st)
			}
		}
	})
	return m
}
