package matchinit

import (
	"fmt"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
)

// checkMaximal verifies validity plus maximality: no edge joins two
// unmatched vertices.
func checkMaximal(t *testing.T, g *bipartite.Graph, m *matching.Matching, name string) {
	t.Helper()
	if err := m.Verify(g); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for x := int32(0); x < g.NX(); x++ {
		if m.MateX[x] != matching.None {
			continue
		}
		for _, y := range g.NbrX(x) {
			if m.MateY[y] == matching.None {
				t.Fatalf("%s: not maximal: edge (%d,%d) joins two free vertices", name, x, y)
			}
		}
	}
}

func suite() map[string]*bipartite.Graph {
	return map[string]*bipartite.Graph{
		"empty":     bipartite.MustFromEdges(0, 0, nil),
		"no-edges":  bipartite.MustFromEdges(4, 4, nil),
		"er":        gen.ER(120, 120, 500, 1),
		"grid":      gen.Grid(10, 10),
		"rmat":      gen.RMAT(8, 8, 0.57, 0.19, 0.19, 2),
		"deficient": gen.RankDeficient(150, 150, 60, 2, 3),
		"star":      bipartite.MustFromEdges(4, 1, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}),
	}
}

func TestKarpSipserMaximal(t *testing.T) {
	for name, g := range suite() {
		m := KarpSipser(g, 42)
		checkMaximal(t, g, m, "KS/"+name)
	}
}

func TestGreedyMaximal(t *testing.T) {
	for name, g := range suite() {
		m := Greedy(g)
		checkMaximal(t, g, m, "greedy/"+name)
	}
}

func TestParallelGreedyMaximal(t *testing.T) {
	for name, g := range suite() {
		for _, p := range []int{1, 2, 8} {
			m := ParallelGreedy(g, p)
			checkMaximal(t, g, m, fmt.Sprintf("pgreedy(%d)/%s", p, name))
		}
	}
}

// TestKarpSipserDegreeOneOptimal: on a forest (here: a path), the degree-1
// rule alone is optimal, so Karp–Sipser must find the true maximum.
func TestKarpSipserDegreeOneOptimal(t *testing.T) {
	// Path x0-y0-x1-y1-...: maximum matching n on 2n+1 path vertices.
	n := int32(20)
	var edges []bipartite.Edge
	for i := int32(0); i < n; i++ {
		edges = append(edges, bipartite.Edge{X: i, Y: i})
		if i+1 < n {
			edges = append(edges, bipartite.Edge{X: i + 1, Y: i})
		}
	}
	g := bipartite.MustFromEdges(n, n, edges)
	m := KarpSipser(g, 1)
	if m.Cardinality() != int64(n) {
		t.Fatalf("KS on path: %d, want %d", m.Cardinality(), n)
	}
}

func TestKarpSipserDeterministicPerSeed(t *testing.T) {
	g := gen.ER(100, 100, 400, 9)
	a := KarpSipser(g, 5)
	b := KarpSipser(g, 5)
	for i := range a.MateX {
		if a.MateX[i] != b.MateX[i] {
			t.Fatal("same seed produced different matchings")
		}
	}
}

// TestKarpSipserBeatsGreedyOnAverage: KS should never be much worse than
// greedy and typically at least as good on random sparse graphs.
func TestKarpSipserQuality(t *testing.T) {
	var ksTotal, greedyTotal int64
	for seed := int64(0); seed < 10; seed++ {
		g := gen.ER(300, 300, 900, seed)
		ksTotal += KarpSipser(g, seed).Cardinality()
		greedyTotal += Greedy(g).Cardinality()
	}
	if ksTotal < greedyTotal*95/100 {
		t.Fatalf("Karp–Sipser total %d much worse than greedy %d", ksTotal, greedyTotal)
	}
}

// TestInitializersValidProperty: random graphs always get valid maximal
// matchings from all initializers.
func TestInitializersValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(60, 50, 250, seed)
		for _, m := range []*matching.Matching{
			KarpSipser(g, seed), Greedy(g), ParallelGreedy(g, 4),
		} {
			if m.Verify(g) != nil {
				return false
			}
			for x := int32(0); x < g.NX(); x++ {
				if m.MateX[x] != matching.None {
					continue
				}
				for _, y := range g.NbrX(x) {
					if m.MateY[y] == matching.None {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelKarpSipserMaximal(t *testing.T) {
	for name, g := range suite() {
		for _, p := range []int{1, 2, 8} {
			m := ParallelKarpSipser(g, p)
			checkMaximal(t, g, m, fmt.Sprintf("pks(%d)/%s", p, name))
		}
	}
}

// TestParallelKarpSipserQuality: the parallel relaxation must stay close to
// serial Karp–Sipser cardinality on random sparse graphs.
func TestParallelKarpSipserQuality(t *testing.T) {
	var pksTotal, ksTotal int64
	for seed := int64(0); seed < 8; seed++ {
		g := gen.ER(400, 400, 1300, seed)
		pksTotal += ParallelKarpSipser(g, 4).Cardinality()
		ksTotal += KarpSipser(g, seed).Cardinality()
	}
	if pksTotal < ksTotal*97/100 {
		t.Fatalf("parallel KS total %d much worse than serial KS %d", pksTotal, ksTotal)
	}
}

// TestParallelKarpSipserDegreeOnePath: on a path the degree-1 cascade alone
// is optimal; the parallel variant must find the full matching too.
func TestParallelKarpSipserDegreeOnePath(t *testing.T) {
	n := int32(501)
	var edges []bipartite.Edge
	for i := int32(0); i < n; i++ {
		edges = append(edges, bipartite.Edge{X: i, Y: i})
		if i+1 < n {
			edges = append(edges, bipartite.Edge{X: i + 1, Y: i})
		}
	}
	g := bipartite.MustFromEdges(n, n, edges)
	for _, p := range []int{1, 4} {
		m := ParallelKarpSipser(g, p)
		if m.Cardinality() != int64(n) {
			t.Fatalf("p=%d: %d, want %d", p, m.Cardinality(), n)
		}
	}
}
