// Package matchinit implements maximal-matching initializers. The paper
// initializes every maximum matching algorithm with Karp–Sipser (§II-B),
// "one of the best initializer algorithms for cardinality matching"; a
// simple parallel greedy initializer is provided for comparison and for the
// initializer ablation tests.
package matchinit

import (
	"math/rand"
	"sync/atomic"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
	"graftmatch/internal/par"
)

// KarpSipser computes a maximal matching with the Karp–Sipser heuristic:
// while any vertex has exactly one available neighbor, match that pair
// (degree-1 rule, provably safe); otherwise match an arbitrary available
// edge chosen from a seeded random vertex order. Runs in O(m).
func KarpSipser(g *bipartite.Graph, seed int64) *matching.Matching {
	m := matching.New(g.NX(), g.NY())
	nx, ny := g.NX(), g.NY()

	// Dynamic degrees over still-unmatched endpoints.
	degX := make([]int32, nx)
	degY := make([]int32, ny)
	for x := int32(0); x < nx; x++ {
		degX[x] = int32(g.DegX(x))
	}
	for y := int32(0); y < ny; y++ {
		degY[y] = int32(g.DegY(y))
	}

	// Stacks of degree-1 vertices. Entries may be stale (vertex matched or
	// degree changed since push); validity is rechecked at pop.
	oneX := make([]int32, 0, 1024)
	oneY := make([]int32, 0, 1024)
	for x := int32(0); x < nx; x++ {
		if degX[x] == 1 {
			oneX = append(oneX, x)
		}
	}
	for y := int32(0); y < ny; y++ {
		if degY[y] == 1 {
			oneY = append(oneY, y)
		}
	}

	// matchPair matches (x, y) and updates dynamic degrees of their
	// still-unmatched neighbors, pushing new degree-1 vertices.
	matchPair := func(x, y int32) {
		m.Match(x, y)
		for _, yy := range g.NbrX(x) {
			if m.MateY[yy] == matching.None {
				degY[yy]--
				if degY[yy] == 1 {
					oneY = append(oneY, yy)
				}
			}
		}
		for _, xx := range g.NbrY(y) {
			if m.MateX[xx] == matching.None {
				degX[xx]--
				if degX[xx] == 1 {
					oneX = append(oneX, xx)
				}
			}
		}
	}

	drainDegreeOne := func() {
		for len(oneX) > 0 || len(oneY) > 0 {
			if len(oneX) > 0 {
				x := oneX[len(oneX)-1]
				oneX = oneX[:len(oneX)-1]
				if m.MateX[x] != matching.None || degX[x] != 1 {
					continue
				}
				if y := firstFreeY(g, m, x); y != matching.None {
					matchPair(x, y)
				}
				continue
			}
			y := oneY[len(oneY)-1]
			oneY = oneY[:len(oneY)-1]
			if m.MateY[y] != matching.None || degY[y] != 1 {
				continue
			}
			if x := firstFreeX(g, m, y); x != matching.None {
				matchPair(x, y)
			}
		}
	}

	drainDegreeOne()

	// Random-order phase 2: match arbitrary available edges, returning to
	// the degree-1 rule after every match.
	order := rand.New(rand.NewSource(seed)).Perm(int(nx))
	for _, xi := range order {
		x := int32(xi)
		if m.MateX[x] != matching.None {
			continue
		}
		if y := firstFreeY(g, m, x); y != matching.None {
			matchPair(x, y)
			drainDegreeOne()
		}
	}
	return m
}

func firstFreeY(g *bipartite.Graph, m *matching.Matching, x int32) int32 {
	for _, y := range g.NbrX(x) {
		if m.MateY[y] == matching.None {
			return y
		}
	}
	return matching.None
}

func firstFreeX(g *bipartite.Graph, m *matching.Matching, y int32) int32 {
	for _, x := range g.NbrY(y) {
		if m.MateX[x] == matching.None {
			return x
		}
	}
	return matching.None
}

// Greedy computes a maximal matching by a single serial pass over X,
// matching each vertex to its first free neighbor.
func Greedy(g *bipartite.Graph) *matching.Matching {
	m := matching.New(g.NX(), g.NY())
	for x := int32(0); x < g.NX(); x++ {
		if y := firstFreeY(g, m, x); y != matching.None {
			m.Match(x, y)
		}
	}
	return m
}

// ParallelGreedy computes a maximal matching with p workers: X vertices are
// scanned in parallel and claim a free neighbor with a CAS on mateY. The
// result is a valid maximal matching (claims are linearizable), though not
// deterministic across thread counts.
func ParallelGreedy(g *bipartite.Graph, p int) *matching.Matching {
	m := matching.New(g.NX(), g.NY())
	mateY := m.MateY
	par.ForDynamic(p, int(g.NX()), 512, func(_, lo, hi int) {
		for xi := lo; xi < hi; xi++ {
			x := int32(xi)
			for _, y := range g.NbrX(x) {
				if atomic.LoadInt32(&mateY[y]) != matching.None {
					continue
				}
				if atomic.CompareAndSwapInt32(&mateY[y], matching.None, x) {
					m.MateX[x] = y
					break
				}
			}
		}
	})
	// Second pass: vertices that lost every race retry once over the final
	// state to guarantee maximality.
	for x := int32(0); x < g.NX(); x++ {
		if m.MateX[x] != matching.None {
			continue
		}
		if y := firstFreeY(g, m, x); y != matching.None {
			m.Match(x, y)
		}
	}
	return m
}
