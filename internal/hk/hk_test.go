package hk

import (
	"math"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestBasicInstances(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"perfect", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}), 3},
		{"crown", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: 0}, {X: 1, Y: 2}, {X: 2, Y: 0}, {X: 2, Y: 1}}), 3},
		{"star", bipartite.MustFromEdges(1, 5, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: 2}, {X: 0, Y: 3}, {X: 0, Y: 4}}), 1},
	}
	for _, c := range cases {
		m := matching.New(c.g.NX(), c.g.NY())
		Run(c.g, m)
		if m.Cardinality() != c.want {
			t.Fatalf("%s: %d, want %d", c.name, m.Cardinality(), c.want)
		}
		if err := matching.VerifyMaximum(c.g, m); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestMaximumOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(100, 90, 400, seed)
		m := matchinit.KarpSipser(g, seed)
		Run(g, m)
		return matching.VerifyMaximum(g, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseBound checks the Hopcroft–Karp O(√n) phase guarantee (with a
// constant-factor allowance for the counting convention).
func TestPhaseBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ER(1000, 1000, 5000, seed)
		m := matching.New(g.NX(), g.NY())
		stats := Run(g, m)
		bound := int64(4*math.Sqrt(float64(g.NumVertices()))) + 4
		if stats.Phases > bound {
			t.Fatalf("seed %d: %d phases exceeds O(√n) bound %d", seed, stats.Phases, bound)
		}
	}
}

// TestShortestPathsFirst: from an empty matching on a graph whose shortest
// augmenting paths are single edges, the first phase must find only
// length-1 paths.
func TestShortestPathsFirst(t *testing.T) {
	g := bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}})
	m := matching.New(3, 3)
	stats := Run(g, m)
	if m.Cardinality() != 3 {
		t.Fatalf("cardinality %d", m.Cardinality())
	}
	// All augmenting paths must have been single edges: a perfect
	// matching on the diagonal exists, so Σ lengths = #paths.
	if stats.AugPathLen != stats.AugPaths {
		t.Fatalf("HK found non-shortest paths from scratch: len=%d paths=%d", stats.AugPathLen, stats.AugPaths)
	}
}

func TestWithInitialMatching(t *testing.T) {
	g := gen.Grid(12, 12)
	m := matchinit.Greedy(g)
	init := m.Cardinality()
	stats := Run(g, m)
	if stats.InitialCardinality != init {
		t.Fatalf("initial %d, want %d", stats.InitialCardinality, init)
	}
	if m.Cardinality() < init {
		t.Fatal("matching shrank")
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestRectangularHK(t *testing.T) {
	g := gen.ER(500, 60, 1500, 9)
	m := matching.New(g.NX(), g.NY())
	Run(g, m)
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() > 60 {
		t.Fatalf("cardinality %d exceeds |Y|", m.Cardinality())
	}
}

func TestIdempotentHK(t *testing.T) {
	g := gen.ER(200, 200, 800, 10)
	m := matching.New(g.NX(), g.NY())
	Run(g, m)
	before := m.Cardinality()
	s := Run(g, m)
	if s.AugPaths != 0 || m.Cardinality() != before {
		t.Fatalf("rerun did work: %+v", s)
	}
}
