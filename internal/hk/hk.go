// Package hk implements the Hopcroft–Karp algorithm: phases of a global BFS
// that layers the graph by shortest alternating distance, followed by DFS
// extraction of a maximal set of vertex-disjoint shortest augmenting paths.
// O(√n) phases in theory; in practice it needs more phases than MS-BFS
// because it only augments along shortest paths (§II-D / Fig. 1b).
package hk

import (
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

const none = matching.None

const inf int32 = 1<<31 - 1

// Run computes a maximum cardinality matching with Hopcroft–Karp, updating
// m in place.
func Run(g *bipartite.Graph, m *matching.Matching) *matching.Stats {
	stats := &matching.Stats{Algorithm: "HK", Threads: 1}
	stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	nx := int(g.NX())
	distX := make([]int32, nx)
	frontier := make([]int32, 0, nx)
	next := make([]int32, 0, nx)
	iter := make([]int64, nx) // per-phase DFS adjacency cursors

	for {
		// BFS from all unmatched X vertices, layering X by alternating
		// distance; stop at the first layer containing a free Y endpoint.
		for i := range distX {
			distX[i] = inf
		}
		frontier = frontier[:0]
		for x := int32(0); x < int32(nx); x++ {
			if m.MateX[x] == none {
				distX[x] = 0
				frontier = append(frontier, x)
			}
		}
		foundFree := false
		for len(frontier) > 0 && !foundFree {
			next = next[:0]
			for _, x := range frontier {
				nbr := g.NbrX(x)
				stats.EdgesTraversed += int64(len(nbr))
				for _, y := range nbr {
					mate := m.MateY[y]
					if mate == none {
						foundFree = true
						continue
					}
					if distX[mate] == inf {
						distX[mate] = distX[x] + 1
						next = append(next, mate)
					}
				}
			}
			frontier, next = next, frontier
		}
		stats.Phases++
		if !foundFree {
			break
		}

		// DFS phase: extract a maximal set of vertex-disjoint shortest
		// augmenting paths through the level structure.
		for i := range iter {
			iter[i] = 0
		}
		augmentedInPhase := false
		for x0 := int32(0); x0 < int32(nx); x0++ {
			if m.MateX[x0] != none {
				continue
			}
			if length := tryAugment(g, m, x0, distX, iter, stats); length > 0 {
				stats.AugPaths++
				stats.AugPathLen += int64(length)
				augmentedInPhase = true
			}
		}
		if !augmentedInPhase {
			break
		}
	}

	stats.Runtime = time.Since(start)
	stats.FinalCardinality = m.Cardinality()
	stats.Complete = true
	return stats
}

// tryAugment runs the level-restricted DFS from x0 and flips the path if a
// free Y vertex is reached, returning the path length in edges (0 if none).
// Y vertices are "consumed" implicitly: once matched to a path their level
// predecessor check fails, and iter never rescans an adjacency position.
func tryAugment(g *bipartite.Graph, m *matching.Matching, x0 int32, distX []int32, iter []int64, stats *matching.Stats) int {
	type frame struct {
		x int32
		y int32
	}
	stack := []frame{{x: x0, y: none}}
	for len(stack) > 0 {
		d := len(stack) - 1
		x := stack[d].x
		base := g.XPtr()[x]
		deg := g.XPtr()[x+1] - base
		if iter[x] >= deg {
			distX[x] = inf // dead end: exclude x from this phase
			stack = stack[:d]
			continue
		}
		y := g.XNbr()[base+iter[x]]
		iter[x]++
		stats.EdgesTraversed++
		mate := m.MateY[y]
		if mate == none {
			// Free Y: flip the path recorded on the stack.
			stack[d].y = y
			for _, f := range stack {
				m.Match(f.x, f.y)
			}
			return 2*len(stack) - 1
		}
		if distX[mate] == distX[x]+1 {
			stack[d].y = y
			stack = append(stack, frame{x: mate, y: none})
		}
	}
	return 0
}
