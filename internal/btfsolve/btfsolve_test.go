package btfsolve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-8

func residual(a *Matrix, x, b []float64) float64 {
	ax := a.Apply(x)
	var worst float64
	for i := range b {
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}

func TestDiagonalSystem(t *testing.T) {
	a, err := NewMatrix(3, []Entry{
		{Row: 0, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: 4}, {Row: 2, Col: 2, Val: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(a, []float64{2, 8, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i := range want {
		if math.Abs(sol.X[i]-want[i]) > tol {
			t.Fatalf("x = %v, want %v", sol.X, want)
		}
	}
	if len(sol.Blocks) != 3 || sol.MaxBlock != 1 {
		t.Fatalf("BTF structure: %v", sol.Blocks)
	}
}

func TestUpperTriangularIsAllSingletons(t *testing.T) {
	// Upper triangular: BTF must find n singleton blocks.
	a, err := NewMatrix(4, []Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 3, Val: 2},
		{Row: 1, Col: 1, Val: 3}, {Row: 1, Col: 2, Val: 1},
		{Row: 2, Col: 2, Val: 2},
		{Row: 3, Col: 3, Val: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	xTrue := []float64{1, -2, 3, 0.5}
	b := a.Apply(xTrue)
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Blocks) != 4 {
		t.Fatalf("blocks = %v, want 4 singletons", sol.Blocks)
	}
	if r := residual(a, sol.X, b); r > tol {
		t.Fatalf("residual %g", r)
	}
}

func TestStructurallySingular(t *testing.T) {
	// Column 1 is empty: no perfect matching.
	a, err := NewMatrix(2, []Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(a, []float64{1, 1}); err == nil {
		t.Fatal("want structural singularity error")
	}
}

func TestNumericallySingular(t *testing.T) {
	// Structurally fine, numerically rank-deficient 2x2 block.
	a, err := NewMatrix(2, []Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("want numerical singularity error")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewMatrix(-1, nil); err == nil {
		t.Fatal("want error for negative n")
	}
	if _, err := NewMatrix(2, []Entry{{Row: 5, Col: 0, Val: 1}}); err == nil {
		t.Fatal("want error for out-of-range entry")
	}
	a, _ := NewMatrix(2, []Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Fatal("want error for rhs length")
	}
	empty, _ := NewMatrix(0, nil)
	if _, err := Solve(empty, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEntriesSummed(t *testing.T) {
	a, err := NewMatrix(1, []Entry{{Row: 0, Col: 0, Val: 1.5}, {Row: 0, Col: 0, Val: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(a, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > tol {
		t.Fatalf("x = %v, want 2 (values summed to 4)", sol.X)
	}
}

// randomBlockSystem builds a scrambled block-triangular matrix with known
// block structure: nb blocks of size bs, diagonally dominant (well
// conditioned), coupled only upward, then randomly permuted.
func randomBlockSystem(rng *rand.Rand, nb, bs int) (*Matrix, int32) {
	n := int32(nb * bs)
	var entries []Entry
	for blk := 0; blk < nb; blk++ {
		lo := int32(blk * bs)
		for i := int32(0); i < int32(bs); i++ {
			row := lo + i
			// Dense-ish strongly coupled block, diagonally dominant.
			var offsum float64
			for j := int32(0); j < int32(bs); j++ {
				if i == j {
					continue
				}
				v := rng.Float64()*2 - 1
				offsum += math.Abs(v)
				entries = append(entries, Entry{Row: row, Col: lo + j, Val: v})
			}
			entries = append(entries, Entry{Row: row, Col: row, Val: offsum + 1 + rng.Float64()})
			// Sparse coupling to later blocks.
			if blk+1 < nb && rng.Intn(2) == 0 {
				tgt := int32((blk+1)*bs) + int32(rng.Intn(int(n)-(blk+1)*bs))
				entries = append(entries, Entry{Row: row, Col: tgt, Val: rng.Float64()})
			}
		}
	}
	// Scramble rows and columns.
	rp := rng.Perm(int(n))
	cp := rng.Perm(int(n))
	scr := make([]Entry, len(entries))
	for i, e := range entries {
		scr[i] = Entry{Row: int32(rp[e.Row]), Col: int32(cp[e.Col]), Val: e.Val}
	}
	a, err := NewMatrix(n, scr)
	if err != nil {
		panic(err)
	}
	return a, int32(bs)
}

func TestScrambledBlockSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nb := rng.Intn(5) + 2
		bs := rng.Intn(6) + 2
		a, maxBs := randomBlockSystem(rng, nb, bs)
		xTrue := make([]float64, a.N())
		for i := range xTrue {
			xTrue[i] = rng.Float64()*4 - 2
		}
		b := a.Apply(xTrue)
		sol, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := residual(a, sol.X, b); r > 1e-6 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
		for i := range xTrue {
			if math.Abs(sol.X[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, sol.X[i], xTrue[i])
			}
		}
		// BTF must not merge across the hidden blocks: the largest dense
		// factorization is at most the hidden block size.
		if sol.MaxBlock > maxBs {
			t.Fatalf("trial %d: max block %d exceeds hidden block size %d", trial, sol.MaxBlock, maxBs)
		}
	}
}

// TestSolveProperty: for random diagonally dominant matrices with full
// structural rank, Solve returns x with small residual.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(20) + 1)
		var entries []Entry
		for i := int32(0); i < n; i++ {
			var offsum float64
			for k := 0; k < 3; k++ {
				j := int32(rng.Intn(int(n)))
				if j == i {
					continue
				}
				v := rng.Float64()*2 - 1
				offsum += math.Abs(v)
				entries = append(entries, Entry{Row: i, Col: j, Val: v})
			}
			entries = append(entries, Entry{Row: i, Col: i, Val: offsum + 1})
		}
		a, err := NewMatrix(n, entries)
		if err != nil {
			return false
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.Apply(xTrue)
		sol, err := Solve(a, b)
		if err != nil {
			return false
		}
		return residual(a, sol.X, b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseLUDirect(t *testing.T) {
	// 2x2: [[0, 1], [2, 0]] forces pivoting.
	a := []float64{0, 1, 2, 0}
	x, err := denseLUSolve(a, []float64{3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > tol || math.Abs(x[1]-3) > tol {
		t.Fatalf("x = %v, want [2 3]", x)
	}
	if _, err := denseLUSolve([]float64{0, 0, 0, 0}, []float64{1, 1}, 2); err == nil {
		t.Fatal("want singularity error")
	}
}

func BenchmarkBTFSolveVsDense(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a, _ := randomBlockSystem(rng, 20, 10) // n = 200
	xTrue := make([]float64, a.N())
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := a.Apply(xTrue)
	b.Run("btf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		n := int(a.N())
		for i := 0; i < b.N; i++ {
			dense := make([]float64, n*n)
			for r := int32(0); r < a.n; r++ {
				for p := a.ptr[r]; p < a.ptr[r+1]; p++ {
					dense[int(r)*n+int(a.col[p])] = a.val[p]
				}
			}
			if _, err := denseLUSolve(dense, rhs, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}
