// Package btfsolve demonstrates the paper's §I motivating application end
// to end: solving a sparse linear system Ax = b faster by first permuting A
// to block triangular form (BTF) via a maximum matching and the
// Dulmage–Mendelsohn decomposition, then solving only the diagonal blocks.
//
// The solver is deliberately simple — dense LU with partial pivoting per
// irreducible diagonal block, plus block back-substitution — because its
// purpose is to exercise and validate the matching/BTF pipeline, not to
// compete with production sparse solvers. For a matrix whose BTF has k
// blocks of size s₁…s_k, factorization work drops from O((Σsᵢ)³) to
// O(Σsᵢ³).
package btfsolve

import (
	"fmt"
	"math"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/dmperm"
	"graftmatch/internal/matchinit"
)

// Entry is one nonzero of a sparse matrix.
type Entry struct {
	Row, Col int32
	Val      float64
}

// Matrix is a square sparse matrix in CSR form with values. Duplicate
// entries are summed at construction.
type Matrix struct {
	n   int32
	ptr []int64
	col []int32
	val []float64
}

// NewMatrix builds an n×n sparse matrix from entries.
func NewMatrix(n int32, entries []Entry) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("btfsolve: negative dimension %d", n)
	}
	// Coalesce via the bipartite builder's ordering: sort by (row, col).
	b := bipartite.NewBuilder(n, n)
	for _, e := range entries {
		if err := b.AddEdge(e.Row, e.Col); err != nil {
			return nil, fmt.Errorf("btfsolve: %w", err)
		}
	}
	g := b.Build()
	m := &Matrix{
		n:   n,
		ptr: append([]int64(nil), g.XPtr()...),
		col: append([]int32(nil), g.XNbr()...),
		val: make([]float64, g.NumEdges()),
	}
	// Sum values into the coalesced positions (binary search per entry).
	for _, e := range entries {
		lo, hi := m.ptr[e.Row], m.ptr[e.Row+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if m.col[mid] < e.Col {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		m.val[lo] += e.Val
	}
	return m, nil
}

// N returns the dimension.
func (m *Matrix) N() int32 { return m.n }

// NumNonzeros returns the structural nonzero count.
func (m *Matrix) NumNonzeros() int64 { return int64(len(m.col)) }

// Pattern returns the sparsity pattern as a bipartite graph (rows = X).
func (m *Matrix) Pattern() *bipartite.Graph {
	b := bipartite.NewBuilder(m.n, m.n)
	b.Reserve(len(m.col))
	for i := int32(0); i < m.n; i++ {
		for p := m.ptr[i]; p < m.ptr[i+1]; p++ {
			_ = b.AddEdge(i, m.col[p])
		}
	}
	return b.Build()
}

// Apply computes y = A·x.
func (m *Matrix) Apply(x []float64) []float64 {
	y := make([]float64, m.n)
	for i := int32(0); i < m.n; i++ {
		var s float64
		for p := m.ptr[i]; p < m.ptr[i+1]; p++ {
			s += m.val[p] * x[m.col[p]]
		}
		y[i] = s
	}
	return y
}

// Solution carries the solve result and the BTF structure used.
type Solution struct {
	X []float64
	// Blocks is the diagonal block size list of the BTF used.
	Blocks []int32
	// MaxBlock is the largest dense factorization performed.
	MaxBlock int32
}

// Solve computes x with Ax = b by BTF decomposition: maximum matching
// (MS-BFS-Graft), Dulmage–Mendelsohn fine blocks, dense LU per block and
// block back-substitution. It returns an error if A is structurally
// singular (no perfect matching) or numerically singular in some block.
func Solve(a *Matrix, b []float64) (*Solution, error) {
	if int32(len(b)) != a.n {
		return nil, fmt.Errorf("btfsolve: rhs length %d, want %d", len(b), a.n)
	}
	if a.n == 0 {
		return &Solution{X: nil}, nil
	}
	g := a.Pattern()
	m := matchinit.KarpSipser(g, 1)
	core.Run(g, m, core.FullOptions(0))
	if m.Cardinality() != int64(a.n) {
		return nil, fmt.Errorf("btfsolve: structurally singular: matching %d < n %d", m.Cardinality(), a.n)
	}
	d, err := dmperm.Decompose(g, m)
	if err != nil {
		return nil, err
	}

	// colPos[orig] = permuted column index.
	colPos := invertPerm(d.ColPerm)

	// Permuted system: A'[i,j] = A[RowPerm[i], ColPerm[j]], b' = P b,
	// unknowns y with x[ColPerm[j]] = y[j]. A' is block *upper*
	// triangular, so solve blocks bottom-up.
	n := int(a.n)
	y := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = b[d.RowPerm[i]]
	}

	// Block boundaries in permuted coordinates.
	starts := make([]int, len(d.Blocks)+1)
	for k, s := range d.Blocks {
		starts[k+1] = starts[k] + int(s)
	}

	var maxBlock int32
	for k := len(d.Blocks) - 1; k >= 0; k-- {
		lo, hi := starts[k], starts[k+1]
		size := hi - lo
		if int32(size) > maxBlock {
			maxBlock = int32(size)
		}
		// Deflate the rhs of this block by already-solved unknowns and
		// assemble the dense block.
		dense := make([]float64, size*size)
		r := make([]float64, size)
		for i := lo; i < hi; i++ {
			orig := d.RowPerm[i]
			ri := rhs[i]
			for p := a.ptr[orig]; p < a.ptr[orig+1]; p++ {
				j := int(colPos[a.col[p]])
				switch {
				case j >= hi:
					ri -= a.val[p] * y[j] // solved later-block unknown
				case j >= lo:
					dense[(i-lo)*size+(j-lo)] = a.val[p]
				default:
					// Entry below the block diagonal would contradict the
					// BTF; dmperm guarantees none exist.
					return nil, fmt.Errorf("btfsolve: internal: entry (%d,%d) below block diagonal", orig, a.col[p])
				}
			}
			r[i-lo] = ri
		}
		xb, err := denseLUSolve(dense, r, size)
		if err != nil {
			return nil, fmt.Errorf("btfsolve: block %d (size %d): %w", k, size, err)
		}
		copy(y[lo:hi], xb)
	}
	// Undo the column permutation: x[ColPerm[j]] = y[j].
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[d.ColPerm[j]] = y[j]
	}
	return &Solution{X: x, Blocks: d.Blocks, MaxBlock: maxBlock}, nil
}

// invertPerm returns pos with pos[perm[i]] = i.
func invertPerm(perm []int32) []int32 {
	pos := make([]int32, len(perm))
	for i, v := range perm {
		pos[v] = int32(i)
	}
	return pos
}

// denseLUSolve solves the dense size×size system in place with partial
// pivoting. a is row-major and clobbered.
func denseLUSolve(a []float64, b []float64, size int) ([]float64, error) {
	piv := make([]int, size)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < size; k++ {
		// Partial pivot.
		best, bestAbs := k, math.Abs(a[piv[k]*size+k])
		for i := k + 1; i < size; i++ {
			if v := math.Abs(a[piv[i]*size+k]); v > bestAbs {
				best, bestAbs = i, v
			}
		}
		if bestAbs == 0 {
			return nil, fmt.Errorf("numerically singular at pivot %d", k)
		}
		piv[k], piv[best] = piv[best], piv[k]
		pk := piv[k] * size
		inv := 1 / a[pk+k]
		for i := k + 1; i < size; i++ {
			pi := piv[i] * size
			f := a[pi+k] * inv
			if f == 0 {
				continue
			}
			a[pi+k] = f
			for j := k + 1; j < size; j++ {
				a[pi+j] -= f * a[pk+j]
			}
		}
	}
	// Forward substitution (L has unit diagonal, stored below).
	yv := make([]float64, size)
	for i := 0; i < size; i++ {
		s := b[piv[i]]
		pi := piv[i] * size
		for j := 0; j < i; j++ {
			s -= a[pi+j] * yv[j]
		}
		yv[i] = s
	}
	// Back substitution.
	x := make([]float64, size)
	for i := size - 1; i >= 0; i-- {
		pi := piv[i] * size
		s := yv[i]
		for j := i + 1; j < size; j++ {
			s -= a[pi+j] * x[j]
		}
		x[i] = s / a[pi+i]
	}
	return x, nil
}
