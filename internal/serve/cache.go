package serve

import (
	"sync"
	"time"

	"graftmatch"
	"graftmatch/internal/checkpoint"
)

// maxCachedResults bounds the completed-result cache. The registry is fixed,
// but seeds and algorithm choices multiply keys, so eviction is needed;
// random eviction (map order) is good enough for a bounded memory guarantee.
const maxCachedResults = 256

// cacheKey identifies one deterministic computation: the graph content (by
// fingerprint, so two instances backed by identical files share results) and
// everything that changes the answer. Threads deliberately excluded — the
// matching may differ run to run, but any maximum matching is a correct
// answer, so a cached one from a different thread count still serves.
type cacheKey struct {
	fp   checkpoint.Fingerprint
	alg  graftmatch.Algorithm
	init graftmatch.Initializer
	seed int64
}

// flight is a single-flight cell: the leader computes and closes done; any
// follower that arrives while it is open waits (bounded by its own deadline)
// instead of duplicating the work.
type flight struct {
	done chan struct{}
	res  *graftmatch.Result // non-nil after done only for a complete result
}

// LastGood is the best matching any run has reached for one instance: the
// degradation floor. A request whose own run cannot finish in time answers
// with this instead of an error.
type LastGood struct {
	MateX, MateY []int32
	Cardinality  int64
	Complete     bool
	Engine       string
	When         time.Time
}

// resultCache combines the complete-result cache, the single-flight table,
// and the per-instance last-good floor. One mutex guards the maps; waiting
// happens on per-flight channels, never under the lock.
type resultCache struct {
	mu       sync.Mutex
	results  map[cacheKey]*graftmatch.Result
	inflight map[cacheKey]*flight
	lastGood map[string]*LastGood
}

func newResultCache() *resultCache {
	return &resultCache{
		results:  make(map[cacheKey]*graftmatch.Result),
		inflight: make(map[cacheKey]*flight),
		lastGood: make(map[string]*LastGood),
	}
}

// begin is the single-flight entry. It returns exactly one of:
//   - res non-nil: a complete cached result (leader false, fl nil);
//   - leader true: the caller must compute and then call finish(key, fl, …);
//   - fl non-nil, leader false: another request is computing this key; wait
//     on fl.done with your own deadline and read fl.res after it closes.
func (c *resultCache) begin(key cacheKey) (res *graftmatch.Result, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.results[key]; ok {
		return r, nil, false
	}
	if f, ok := c.inflight[key]; ok {
		return nil, f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return nil, f, true
}

// finish publishes the leader's outcome: caches res when it is a complete
// matching, wakes every follower, and clears the flight. Incomplete or
// failed runs are not cached — the next request should try again.
func (c *resultCache) finish(key cacheKey, f *flight, res *graftmatch.Result) {
	c.mu.Lock()
	if res != nil && res.Complete {
		if len(c.results) >= maxCachedResults {
			for k := range c.results {
				delete(c.results, k)
				break
			}
		}
		c.results[key] = res
		f.res = res
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// noteResult folds a run's matching into the instance's last-good floor if
// it beats what is there. Partial matchings count: the floor should be the
// best state reached by anyone, complete or not. The mate slices are
// retained as-is and treated as immutable from then on (each run allocates
// its own).
func (c *resultCache) noteResult(instance, engine string, res *graftmatch.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if lg, ok := c.lastGood[instance]; ok {
		if lg.Cardinality > res.Cardinality || (lg.Complete && !res.Complete) {
			return
		}
	}
	c.lastGood[instance] = &LastGood{
		MateX:       res.MateX,
		MateY:       res.MateY,
		Cardinality: res.Cardinality,
		Complete:    res.Complete,
		Engine:      engine,
		When:        time.Now(),
	}
}

// seedLastGood installs a floor restored from disk (a checkpoint snapshot)
// without competing against live results.
func (c *resultCache) seedLastGood(instance string, lg *LastGood) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.lastGood[instance]; !ok {
		c.lastGood[instance] = lg
	}
}

// getLastGood returns the instance's degradation floor, if any run (or a
// restored checkpoint) has established one.
func (c *resultCache) getLastGood(instance string) (*LastGood, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lg, ok := c.lastGood[instance]
	return lg, ok
}
