package serve

import (
	"strings"
	"testing"
	"time"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder under
// tight caps and checks its contract: never panic, never accept a request
// that violates a cap, and always normalize what it does accept.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"instance":"g"}`,
		`{"instance":"g","algorithm":"pf","initializer":"ks","threads":2,"seed":7}`,
		`{"instance":"g","deadline_ms":250,"class":"batch","mates":true,"no_cache":true}`,
		`{"instance":"g","mate_x":[0,1,-1],"mate_y":[1,0],"b":[1.5,2.5]}`,
		`{"instance":"` + strings.Repeat("a", 300) + `"}`,
		`{"instance":"g","algorithm":"quantum"}`,
		`{"instance":"g","threads":-3}`,
		`{"instance":"g","deadline_ms":-1}`,
		`{"instance":"g","class":"vip"}`,
		`{}`,
		`{`,
		`[]`,
		`null`,
		`"instance"`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	caps := Caps{MaxBody: 4096, MaxName: 64, MaxThreads: 16, MaxVector: 32}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body, caps)
		if err != nil {
			if _, ok := err.(*BadRequestError); !ok {
				t.Fatalf("error type %T, want *BadRequestError: %v", err, err)
			}
			return
		}
		// Accepted requests must honor every cap and normalization the
		// server relies on downstream.
		if req.Instance == "" || len(req.Instance) > caps.MaxName {
			t.Fatalf("accepted instance %q violates caps", req.Instance)
		}
		if req.Threads < 0 || req.Threads > caps.MaxThreads {
			t.Fatalf("accepted threads %d violates caps", req.Threads)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", req.DeadlineMS)
		}
		if req.Class != ClassInteractive && req.Class != ClassBatch {
			t.Fatalf("accepted class %q not normalized", req.Class)
		}
		if len(req.MateX) > caps.MaxVector || len(req.MateY) > caps.MaxVector || len(req.B) > caps.MaxVector {
			t.Fatalf("accepted vectors %d/%d/%d violate caps", len(req.MateX), len(req.MateY), len(req.B))
		}
		// Options resolution must succeed for anything the decoder let
		// through (the server calls it without re-validating).
		_ = req.Options()
		now := time.Now()
		if req.Deadline(now, DefaultDeadline, DefaultMaxDeadline).Before(now) {
			t.Fatal("resolved deadline in the past")
		}
	})
}
