package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graftmatch"
	"graftmatch/internal/btfsolve"
	"graftmatch/internal/dmperm"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

// Default server parameters; see Config.
const (
	DefaultDeadline    = 10 * time.Second
	DefaultMaxDeadline = 2 * time.Minute
)

// Config assembles a Server. Registry is required; everything else has a
// working zero value.
type Config struct {
	// Registry holds the instances the daemon serves. Required.
	Registry *Registry

	// Pool is the shared worker pool every request computes on. Nil
	// builds a pool sized to GOMAXPROCS. The server owns a pool it
	// builds (Drain closes it) and leaves a caller-supplied one open.
	Pool *par.Pool

	// Threads is the default per-request slice count; 0 means the pool
	// width.
	Threads int

	// Caps bounds request decoding; zero value = package defaults.
	Caps Caps

	// Admission sizes the admission controller; zero value = defaults.
	Admission AdmissionConfig

	// Deadline is the per-request default when the body names none, and
	// MaxDeadline the ceiling a request may ask for (larger asks are
	// clamped). Zero means DefaultDeadline / DefaultMaxDeadline.
	Deadline    time.Duration
	MaxDeadline time.Duration

	// Supervise configures the degradation ladder under every match run.
	// Nil enables the default ladder (requested algorithm, then
	// Pothen–Fan, then Hopcroft–Karp) with a 30s phase watchdog.
	Supervise *graftmatch.SuperviseOptions

	// CheckpointDir, when set, persists crash-safe snapshots of match
	// runs and — at startup — restores each instance's last-good floor
	// from the snapshots a previous process left behind.
	CheckpointDir string

	// Recorder receives metrics and traces from the server and every
	// engine under it, and backs the mounted observability endpoints.
	// Nil builds a live one.
	Recorder *obs.Recorder

	// Log, when non-nil, receives one structured JSON line per request:
	// id, trace, method, path, status, duration, and an event marker on
	// shed/panic outcomes. matchd passes stdout; nil disables request
	// logging.
	Log io.Writer
}

// serveMetrics are the daemon's own counters, next to the engines' metrics
// in the same registry.
type serveMetrics struct {
	requests *obs.Counter // admitted requests, by completion
	shed     *obs.Counter // 429s
	degraded *obs.Counter // degraded (partial / last-good) answers
	cacheHit *obs.Counter // cache + single-flight join answers
	panics   *obs.Counter // handler panics contained
	inflight *obs.Gauge
	draining *obs.Gauge
	latency  *obs.Histogram // admitted request latency, microseconds
}

// Server is the matching-as-a-service daemon core: admission control in
// front, one shared worker pool behind, a single-flight result cache and a
// per-instance last-good floor in between, and a drain-aware lifecycle
// around all of it. Build with NewServer, expose Handler over a hardened
// HTTP server (NewHTTPServer), and call Drain on shutdown.
type Server struct {
	cfg      Config
	reg      *Registry
	pool     *par.Pool
	ownsPool bool
	adm      *Admission
	cache    *resultCache
	rec      *obs.Recorder
	met      serveMetrics
	mux      *http.ServeMux

	mu        sync.Mutex
	draining  bool
	inflight  sync.WaitGroup
	nInflight atomic.Int64

	logMu sync.Mutex // serializes request-log lines
}

// reqCtx is the per-request telemetry context the request-id middleware
// threads through the handler chain: the correlation id (echoed in
// X-Request-Id), its numeric trace form (stamped on every span the request
// produces), the /requests table token, and the outcome marker the guard and
// failure paths fill in for the request log.
type reqCtx struct {
	id    string
	trace uint64
	token uint64
	event string // "" | "shed" | "panic" | "draining"
}

type reqCtxKey struct{}

// reqFromCtx returns the request's telemetry context, or nil outside the
// middleware (direct handler tests).
func reqFromCtx(ctx context.Context) *reqCtx {
	rc, _ := ctx.Value(reqCtxKey{}).(*reqCtx)
	return rc
}

// traceOf is the span stamp for a request context (0 when untracked).
func traceOf(rc *reqCtx) uint64 {
	if rc == nil {
		return 0
	}
	return rc.trace
}

// NewServer assembles the daemon core from cfg.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: Config.Registry is required")
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = DefaultMaxDeadline
	}
	if cfg.Supervise == nil {
		cfg.Supervise = &graftmatch.SuperviseOptions{PhaseTimeout: 30 * time.Second}
	}
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Registry,
		pool:  cfg.Pool,
		adm:   NewAdmission(cfg.Admission),
		cache: newResultCache(),
		rec:   cfg.Recorder,
	}
	if s.pool == nil {
		s.pool = par.NewPool(0)
		s.ownsPool = true
	}
	if s.rec == nil {
		s.rec = obs.New(obs.Config{Workers: s.pool.Workers()})
	}
	reg := s.rec.Registry()
	s.met = serveMetrics{
		requests: reg.Counter("graftmatch_serve_requests_total", "admitted requests completed"),
		shed:     reg.Counter("graftmatch_serve_shed_total", "requests shed by admission control (429)"),
		degraded: reg.Counter("graftmatch_serve_degraded_total", "degraded answers served (partial or last-good)"),
		cacheHit: reg.Counter("graftmatch_serve_cache_hits_total", "answers served from cache or a joined in-flight run"),
		panics:   reg.Counter("graftmatch_serve_panics_total", "handler panics contained"),
		inflight: reg.Gauge("graftmatch_serve_inflight", "requests currently admitted"),
		draining: reg.Gauge("graftmatch_serve_draining", "1 while the server drains"),
		latency:  reg.Histogram("graftmatch_serve_latency_us", "admitted request latency (µs)"),
	}
	if cfg.CheckpointDir != "" {
		s.restoreLastGood()
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// restoreLastGood seeds each instance's degradation floor from the newest
// intact checkpoint a previous process wrote. Best-effort by design: a
// missing or damaged snapshot just means no floor yet.
func (s *Server) restoreLastGood() {
	for _, name := range s.reg.Names() {
		ins, _ := s.reg.Get(name)
		st, err := graftmatch.LoadCheckpoint(ins.Graph, s.cfg.CheckpointDir)
		if err != nil {
			continue
		}
		//lint:ignore hotpath-alloc startup-only restore: one floor per instance, once per process
		s.cache.seedLastGood(name, &LastGood{
			MateX:       st.MateX,
			MateY:       st.MateY,
			Cardinality: st.Cardinality,
			Engine:      st.Engine,
			When:        time.Now(),
		})
	}
}

// Handler returns the daemon's HTTP surface:
//
//	POST /match      compute (or fetch) a maximum matching
//	POST /verify     check a client-supplied matching
//	POST /decompose  Dulmage–Mendelsohn decomposition
//	POST /btfsolve   solve a linear system over the instance pattern
//	GET  /instances  registry listing + admission snapshot
//	GET  /healthz    liveness (200 while the process runs)
//	GET  /readyz     readiness (503 once draining)
//	GET  /metrics …  the internal/obs surface (/metrics, /status, /trace,
//	                 /cluster, /requests, /debug/pprof, …) of the Recorder
//
// Every response — including 429/500 error paths — carries an X-Request-Id
// header: the inbound header when the client supplied one, a minted 16-hex
// trace id otherwise. Minted ids appear verbatim in /trace span args.
func (s *Server) Handler() http.Handler { return s.withRequestID(s.mux) }

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// sanitizeRequestID accepts a client-supplied id only if it is short and
// printable ASCII — anything else is replaced by a minted id rather than
// echoed into headers and logs.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// tracked reports whether a path belongs on the /requests inflight table:
// the compute endpoints, not scrapes of the observability plane.
func tracked(path string) bool {
	switch path {
	case "/match", "/verify", "/decompose", "/btfsolve":
		return true
	}
	return false
}

// withRequestID is the outermost middleware: it resolves the request's
// correlation id (honoring a sane inbound X-Request-Id, minting otherwise),
// sets the response header before any handler can commit a status, registers
// compute requests on the /requests table, and emits the request log line.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := &reqCtx{}
		if id := sanitizeRequestID(r.Header.Get("X-Request-Id")); id != "" {
			rc.id = id
			rc.trace = obs.HashTrace(id)
		} else {
			rc.trace = obs.NewTraceID()
			rc.id = obs.TraceHex(rc.trace)
		}
		// Set up front so every outcome — success, shed, panic — carries it.
		w.Header().Set("X-Request-Id", rc.id)
		start := time.Now()
		if tracked(r.URL.Path) {
			rc.token = s.rec.ReqBegin(obs.ReqInfo{
				ID:        rc.id,
				Trace:     obs.TraceHex(rc.trace),
				Endpoint:  r.URL.Path,
				State:     "received",
				StartedAt: start.UnixNano(),
			})
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqCtxKey{}, rc)))
		s.rec.ReqEnd(rc.token)
		s.logRequest(rc, r, sw.status, time.Since(start))
	})
}

// logRequest emits the one structured line per request, if logging is on.
func (s *Server) logRequest(rc *reqCtx, r *http.Request, status int, d time.Duration) {
	if s.cfg.Log == nil {
		return
	}
	line := struct {
		TS     string  `json:"ts"`
		ID     string  `json:"id"`
		Trace  string  `json:"trace"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		MS     float64 `json:"ms"`
		Event  string  `json:"event,omitempty"`
	}{
		TS:     time.Now().UTC().Format(time.RFC3339Nano),
		ID:     rc.id,
		Trace:  obs.TraceHex(rc.trace),
		Method: r.Method,
		Path:   r.URL.Path,
		Status: status,
		MS:     float64(d.Microseconds()) / 1e3,
		Event:  rc.event,
	}
	buf, err := json.Marshal(&line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.logMu.Lock()
	_, _ = s.cfg.Log.Write(buf)
	s.logMu.Unlock()
}

func (s *Server) routes() {
	s.mux.HandleFunc("/match", s.guard(s.handleMatch))
	s.mux.HandleFunc("/verify", s.guard(s.handleVerify))
	s.mux.HandleFunc("/decompose", s.guard(s.handleDecompose))
	s.mux.HandleFunc("/btfsolve", s.guard(s.handleSolve))
	s.mux.HandleFunc("/instances", s.handleInstances)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
	// The observability surface rides the same mux, path by path, so one
	// listener serves both planes.
	obsH := obs.Handler(s.rec)
	for _, p := range []string{
		"/metrics", "/metrics.json", "/status", "/cluster", "/requests",
		"/trace", "/trace/summary", "/debug/",
	} {
		s.mux.Handle(p, obsH)
	}
}

// guard wraps a compute handler with the lifecycle defenses shared by every
// endpoint: drain gating (no new work once draining, tracked so Drain can
// wait for admitted work), method/body bounds, decode validation, and panic
// containment — a panicking handler answers 500 and the daemon lives on.
func (s *Server) guard(h func(http.ResponseWriter, *http.Request, *Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rc := reqFromCtx(r.Context())
		// Add-before-check under the lock pairs with Drain's
		// set-then-wait: a request either sees draining and bounces, or
		// is inside the WaitGroup before Drain starts waiting.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			if rc != nil {
				rc.event = "draining"
			}
			writeError(w, http.StatusServiceUnavailable, "draining", 0)
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()
		s.met.inflight.Set(s.nInflight.Add(1))
		defer func() { s.met.inflight.Set(s.nInflight.Add(-1)) }()

		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if rc != nil {
					rc.event = "panic"
				}
				s.met.panics.Add(0, 1)
				s.rec.Tracer().RecordTagged("serve", "panic", start, time.Since(start), 0, traceOf(rc))
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal panic: %v", p), 0)
			}
		}()

		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST required", 0)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.Caps.maxBody()+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error(), 0)
			return
		}
		req, err := DecodeRequest(body, s.cfg.Caps)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		if rc != nil {
			s.rec.ReqTag(rc.token, req.Instance, req.Class)
			s.rec.ReqState(rc.token, "decoded")
		}
		h(w, r, req)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs graceful shutdown of the compute core: stop admitting
// (readyz flips to 503, new compute requests answer 503), wait for every
// admitted request to finish, then release the worker pool if the server
// owns it. Returns ctx.Err if the context expires first; in-flight requests
// are never cancelled — their own deadlines bound how long the wait can
// take (MaxDeadline is the worst case).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.met.draining.Set(1)

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.ownsPool {
			s.pool.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- compute path ----------------------------------------------------------

// run executes one match computation under admission, deadline, supervision
// and the shared pool, and folds the outcome into the last-good floor.
func (s *Server) run(ctx context.Context, ins *Instance, req *Request, deadline time.Time) (*graftmatch.Result, error) {
	opts := req.Options()
	opts.Scheduler = s.pool
	// The traced view stamps the request's trace id on every engine phase
	// span, tying the computation on /trace back to this X-Request-Id.
	opts.Recorder = s.rec.WithTrace(traceOf(reqFromCtx(ctx)))
	opts.Deadline = deadline
	opts.Supervise = s.cfg.Supervise
	if opts.Threads == 0 {
		opts.Threads = s.cfg.Threads
	}
	if opts.Threads == 0 {
		opts.Threads = s.pool.Workers()
	}
	if s.cfg.CheckpointDir != "" {
		opts.Checkpoint = &graftmatch.CheckpointOptions{Dir: s.cfg.CheckpointDir}
	}
	res, err := graftmatch.MatchContext(ctx, ins.Graph, opts)
	if err != nil {
		return nil, err
	}
	s.cache.noteResult(ins.Name, engineName(res, req), res)
	return res, nil
}

func engineName(res *graftmatch.Result, req *Request) string {
	if res.Supervision != nil && res.Supervision.Engine != "" {
		return res.Supervision.Engine
	}
	if res.Stats != nil && res.Stats.Algorithm != "" {
		return res.Stats.Algorithm
	}
	return req.Algorithm
}

// matchOutcome is the resolved answer of the match pipeline before JSON
// shaping.
type matchOutcome struct {
	res      *graftmatch.Result
	lastGood *LastGood
	source   string // computed | cache | inflight | last-good | partial
	degraded bool
}

// getMatch is the full match pipeline: cache lookup, single-flight join,
// admission-controlled compute, and degradation. A nil error always carries
// a usable outcome; a non-nil error is terminal (shed, bad request, or no
// answer of any kind available in time).
func (s *Server) getMatch(ctx context.Context, ins *Instance, req *Request, deadline time.Time) (*matchOutcome, error) {
	rc := reqFromCtx(ctx)
	rec := s.rec.WithTrace(traceOf(rc))
	key := cacheKey{
		fp:   ins.Fingerprint,
		alg:  algorithmByName[strings.ToLower(req.Algorithm)],
		init: initializerByName[strings.ToLower(req.Initializer)],
		seed: req.Seed,
	}

	var fl *flight
	leader := true
	if !req.NoCache {
		cacheStart := time.Now()
		var cached *graftmatch.Result
		cached, fl, leader = s.cache.begin(key)
		if cached != nil {
			s.met.cacheHit.Add(0, 1)
			rec.Span("request", "cache-hit", cacheStart, time.Since(cacheStart), 0)
			return &matchOutcome{res: cached, source: "cache"}, nil
		}
		if !leader {
			// Join the in-flight computation, bounded by our own
			// deadline — a follower never waits past it just because
			// the leader's budget is larger.
			if rc != nil {
				s.rec.ReqState(rc.token, "joined")
			}
			select {
			case <-fl.done:
				if fl.res != nil {
					s.met.cacheHit.Add(0, 1)
					rec.Span("request", "inflight-join", cacheStart, time.Since(cacheStart), 0)
					return &matchOutcome{res: fl.res, source: "inflight"}, nil
				}
				// Leader finished without a complete result; fall
				// through and compute with our remaining budget.
			case <-ctx.Done():
				return s.degrade(ctx, ins, nil)
			}
		}
	}

	if rc != nil {
		s.rec.ReqState(rc.token, "queued")
	}
	admStart := time.Now()
	release, err := s.adm.Admit(ctx, req.Class, deadline)
	rec.Span("request", "admission-wait", admStart, time.Since(admStart), 0)
	if err != nil {
		if leader && fl != nil {
			s.cache.finish(key, fl, nil)
		}
		if ctx.Err() != nil && err == ctx.Err() {
			// Deadline expired while queued: degrade rather than error.
			out, derr := s.degrade(ctx, ins, nil)
			if derr == nil {
				return out, nil
			}
		}
		return nil, err
	}
	if rc != nil {
		s.rec.ReqState(rc.token, "running")
	}
	res, err := s.run(ctx, ins, req, deadline)
	release()
	if leader && fl != nil {
		s.cache.finish(key, fl, res)
	}
	if err != nil {
		// A real engine failure (e.g. a contained worker panic): the
		// last-good floor is the difference between an error page and a
		// degraded answer.
		return s.degrade(ctx, ins, err)
	}
	if res.Complete {
		return &matchOutcome{res: res, source: "computed"}, nil
	}
	// Deadline/stall left a valid partial matching. Serve the best state
	// known for the instance: an earlier complete/larger matching beats
	// this run's partial.
	if lg, ok := s.cache.getLastGood(ins.Name); ok && lg.Cardinality > res.Cardinality {
		s.met.degraded.Add(0, 1)
		return &matchOutcome{lastGood: lg, source: "last-good", degraded: true}, nil
	}
	s.met.degraded.Add(0, 1)
	return &matchOutcome{res: res, source: "partial", degraded: true}, nil
}

// degrade answers from the last-good floor, or reports cause (or a generic
// timeout) when no floor exists.
func (s *Server) degrade(ctx context.Context, ins *Instance, cause error) (*matchOutcome, error) {
	if lg, ok := s.cache.getLastGood(ins.Name); ok {
		if rc := reqFromCtx(ctx); rc != nil {
			s.rec.ReqState(rc.token, "degraded")
		}
		s.met.degraded.Add(0, 1)
		return &matchOutcome{lastGood: lg, source: "last-good", degraded: true}, nil
	}
	if cause == nil {
		cause = fmt.Errorf("deadline expired before any result was available")
	}
	return nil, cause
}

// ---- handlers --------------------------------------------------------------

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request, req *Request) {
	start := time.Now()
	ins, ok := s.reg.Get(req.Instance)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance "+req.Instance, 0)
		return
	}
	deadline := req.Deadline(start, s.cfg.Deadline, s.cfg.MaxDeadline)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	out, err := s.getMatch(ctx, ins, req, deadline)
	if err != nil {
		s.writeFailure(w, r, err)
		return
	}
	s.met.requests.Add(0, 1)
	// Exemplar links this latency bucket to the request's trace on /trace.
	s.met.latency.ObserveEx(0, time.Since(start).Microseconds(), traceOf(reqFromCtx(r.Context())))
	writeJSON(w, http.StatusOK, s.matchResponse(ins, req, out, time.Since(start)))
}

// matchResponse shapes an outcome into the wire form.
func (s *Server) matchResponse(ins *Instance, req *Request, out *matchOutcome, elapsed time.Duration) *MatchResponse {
	resp := &MatchResponse{
		Instance:  ins.Name,
		Algorithm: strings.ToLower(req.Algorithm),
		Source:    out.source,
		Degraded:  out.degraded,
		RuntimeMS: float64(elapsed.Microseconds()) / 1e3,
	}
	if resp.Algorithm == "" {
		resp.Algorithm = "msbfsgraft"
	}
	switch {
	case out.res != nil:
		resp.Cardinality = out.res.Cardinality
		resp.Complete = out.res.Complete
		resp.Engine = engineName(out.res, req)
		if st := out.res.Stats; st != nil {
			resp.InitialCardinality = st.InitialCardinality
			resp.Phases = st.Phases
		}
		if req.Mates {
			resp.MateX, resp.MateY = out.res.MateX, out.res.MateY
		}
	case out.lastGood != nil:
		resp.Cardinality = out.lastGood.Cardinality
		resp.Complete = out.lastGood.Complete
		resp.Engine = out.lastGood.Engine
		if req.Mates {
			resp.MateX, resp.MateY = out.lastGood.MateX, out.lastGood.MateY
		}
	}
	return resp
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request, req *Request) {
	ins, ok := s.reg.Get(req.Instance)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance "+req.Instance, 0)
		return
	}
	resp := &VerifyResponse{Instance: ins.Name}
	if err := graftmatch.VerifyMatching(ins.Graph, req.MateX, req.MateY); err != nil {
		resp.Reason = err.Error()
	} else {
		resp.Valid = true
		if err := graftmatch.VerifyMaximum(ins.Graph, req.MateX, req.MateY); err != nil {
			resp.Reason = err.Error()
		} else {
			resp.Maximum = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request, req *Request) {
	start := time.Now()
	ins, ok := s.reg.Get(req.Instance)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance "+req.Instance, 0)
		return
	}
	deadline := req.Deadline(start, s.cfg.Deadline, s.cfg.MaxDeadline)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	out, err := s.getMatch(ctx, ins, req, deadline)
	if err != nil {
		s.writeFailure(w, r, err)
		return
	}
	mateX, mateY, complete := outcomeMates(out)
	if !complete {
		// A non-maximum matching yields a non-canonical DM split —
		// wrong structure, not a degraded answer. Refuse instead.
		writeError(w, http.StatusServiceUnavailable,
			"no maximum matching available within deadline; retry with a larger deadline_ms", 0)
		return
	}
	m := &matching.Matching{MateX: mateX, MateY: mateY}
	d, err := dmperm.Decompose(ins.Graph, m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	s.met.requests.Add(0, 1)
	resp := &DecomposeResponse{
		Instance: ins.Name,
		Match:    *s.matchResponse(ins, req, out, time.Since(start)),
		HRows:    d.HRows, HCols: d.HCols,
		SSize: d.SSize,
		VRows: d.VRows, VCols: d.VCols,
		Blocks: d.NumBlocks(),
	}
	for _, b := range d.Blocks {
		if b > resp.LargestBlock {
			resp.LargestBlock = b
		}
	}
	if req.Mates {
		resp.RowPerm, resp.ColPerm = d.RowPerm, d.ColPerm
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSolve runs the paper's §I motivating application over an instance:
// a BTF-ordered sparse solve on a diagonally-dominant system synthesized
// deterministically from the instance's nonzero pattern (so clients can
// exercise the full matching → DM → solve pipeline without shipping
// values).
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, req *Request) {
	start := time.Now()
	ins, ok := s.reg.Get(req.Instance)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance "+req.Instance, 0)
		return
	}
	g := ins.Graph
	if g.NX() != g.NY() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("instance is %dx%d; btfsolve needs a square pattern", g.NX(), g.NY()), 0)
		return
	}
	n := g.NX()
	if req.B != nil && int32(len(req.B)) != n {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("b has %d entries, instance is %dx%d", len(req.B), n, n), 0)
		return
	}
	a, err := btfsolve.NewMatrix(n, synthesizeEntries(g))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	b := req.B
	if b == nil {
		b = make([]float64, n)
		for i := range b {
			b[i] = 1
		}
	}
	sol, err := btfsolve.Solve(a, b)
	if err != nil {
		// Structurally singular patterns are a property of the
		// instance, not a server fault.
		writeError(w, http.StatusUnprocessableEntity, err.Error(), 0)
		return
	}
	s.met.requests.Add(0, 1)
	writeJSON(w, http.StatusOK, &SolveResponse{
		Instance:  ins.Name,
		N:         n,
		Blocks:    len(sol.Blocks),
		RuntimeMS: float64(time.Since(start).Microseconds()) / 1e3,
		X:         sol.X,
	})
}

// synthesizeEntries gives the pattern deterministic diagonally-dominant
// values: off-diagonals decay with position, and each row's diagonal
// exceeds its off-diagonal sum, so any structurally nonsingular pattern
// solves.
func synthesizeEntries(g *graftmatch.Graph) []btfsolve.Entry {
	entries := make([]btfsolve.Entry, 0, g.NumEdges()+int64(g.NX()))
	for x := int32(0); x < g.NX(); x++ {
		sum := 0.0
		diag := false
		for _, y := range g.NbrX(x) {
			if y == x {
				diag = true
				continue
			}
			v := 1.0 / float64(2+(x+y)%7)
			sum += v
			entries = append(entries, btfsolve.Entry{Row: x, Col: y, Val: v})
		}
		if diag {
			entries = append(entries, btfsolve.Entry{Row: x, Col: x, Val: sum + 1.5})
		}
	}
	return entries
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required", 0)
		return
	}
	type instanceInfo struct {
		Name        string `json:"name"`
		NX          int32  `json:"nx"`
		NY          int32  `json:"ny"`
		Edges       int64  `json:"edges"`
		LastGood    int64  `json:"last_good_cardinality,omitempty"`
		LastGoodMax bool   `json:"last_good_complete,omitempty"`
	}
	var infos []instanceInfo
	for _, name := range s.reg.Names() {
		ins, _ := s.reg.Get(name)
		info := instanceInfo{
			Name:  name,
			NX:    ins.Graph.NX(),
			NY:    ins.Graph.NY(),
			Edges: ins.Graph.NumEdges(),
		}
		if lg, ok := s.cache.getLastGood(name); ok {
			info.LastGood = lg.Cardinality
			info.LastGoodMax = lg.Complete
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"instances": infos,
		"admission": s.adm.Stats(),
		"draining":  s.isDraining(),
	})
}

// outcomeMates extracts the matching an outcome carries.
func outcomeMates(out *matchOutcome) (mateX, mateY []int32, complete bool) {
	switch {
	case out.res != nil:
		return out.res.MateX, out.res.MateY, out.res.Complete
	case out.lastGood != nil:
		return out.lastGood.MateX, out.lastGood.MateY, out.lastGood.Complete
	default:
		return nil, nil, false
	}
}

// writeFailure maps a pipeline error onto the wire: shed → 429 with
// Retry-After, validation → 400, everything else → 500. The shed path marks
// the request log line so a 429'd client's retries stay correlatable.
func (s *Server) writeFailure(w http.ResponseWriter, r *http.Request, err error) {
	switch e := err.(type) {
	case *ShedError:
		if rc := reqFromCtx(r.Context()); rc != nil {
			rc.event = "shed"
		}
		s.met.shed.Add(0, 1)
		retry := e.RetryAfter
		if retry < time.Second {
			retry = time.Second
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(retry.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, e.Error(), e.RetryAfter.Milliseconds())
	case *BadRequestError:
		writeError(w, http.StatusBadRequest, e.Error(), 0)
	default:
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encode error dropped deliberately: it means the client went away.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfterMS int64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(&ErrorResponse{Error: msg, RetryAfterMS: retryAfterMS})
}

// NewHTTPServer wraps a handler in an http.Server hardened against slow and
// hostile clients: header and body read timeouts (slowloris defense), an
// idle timeout to reclaim abandoned keep-alives, and a header size cap. No
// WriteTimeout — response time is already bounded by the request deadline
// ceiling, and a WriteTimeout would sever slow-but-legitimate clients
// downloading large mate arrays.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}
