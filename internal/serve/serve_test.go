package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graftmatch"
)

// writeGraph writes a random bipartite edge list ("# nx ny" header) to path.
// diag additionally adds the (i,i) diagonal, making square patterns
// structurally nonsingular for btfsolve.
func writeGraph(t *testing.T, path string, nx, ny int32, deg int, seed int64, diag bool) {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "# %d %d\n", nx, ny)
	rng := rand.New(rand.NewSource(seed))
	for x := int32(0); x < nx; x++ {
		if diag {
			fmt.Fprintf(&b, "%d %d\n", x, x)
		}
		for d := 0; d < deg; d++ {
			fmt.Fprintf(&b, "%d %d\n", x, rng.Int31n(ny))
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a registry in a temp dir via populate, then a Server
// on it and an httptest listener.
func newTestServer(t *testing.T, cfg Config, populate func(dir string)) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	populate(dir)
	reg, err := LoadRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeMatch(t *testing.T, data []byte) *MatchResponse {
	t.Helper()
	var m MatchResponse
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	return &m
}

// ---- registry --------------------------------------------------------------

func TestLoadRegistry(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, filepath.Join(dir, "small.el"), 50, 50, 3, 1, false)
	writeGraph(t, filepath.Join(dir, "tiny.txt"), 5, 7, 2, 2, false)
	if err := os.WriteFile(filepath.Join(dir, "notes.md"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "small" || got[1] != "tiny" {
		t.Fatalf("names = %v", got)
	}
	ins, ok := reg.Get("tiny")
	if !ok || ins.Graph.NX() != 5 || ins.Graph.NY() != 7 {
		t.Fatalf("tiny = %+v ok=%v", ins, ok)
	}
}

func TestLoadRegistryRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, filepath.Join(dir, "g.el"), 5, 5, 2, 1, false)
	writeGraph(t, filepath.Join(dir, "g.txt"), 5, 5, 2, 1, false)
	if _, err := LoadRegistry(dir); err == nil || !strings.Contains(err.Error(), "defined by both") {
		t.Fatalf("err = %v, want duplicate error", err)
	}
}

func TestLoadRegistryRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.el"), []byte("0 nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(dir); err == nil {
		t.Fatal("want error for malformed graph file")
	}
}

func TestLoadRegistryRejectsEmpty(t *testing.T) {
	if _, err := LoadRegistry(t.TempDir()); err == nil {
		t.Fatal("want error for empty registry dir")
	}
}

// ---- request decoding ------------------------------------------------------

func TestDecodeRequestValidation(t *testing.T) {
	cases := []struct {
		name, body string
		caps       Caps
		wantErr    string
	}{
		{"ok", `{"instance":"g"}`, Caps{}, ""},
		{"defaults class", `{"instance":"g"}`, Caps{}, ""},
		{"missing instance", `{}`, Caps{}, "missing"},
		{"bad json", `{`, Caps{}, "malformed"},
		{"body too big", `{"instance":"g"}`, Caps{MaxBody: 4}, "exceeds limit"},
		{"name too long", `{"instance":"abcdef"}`, Caps{MaxName: 3}, "exceeds limit"},
		{"bad algorithm", `{"instance":"g","algorithm":"quantum"}`, Caps{}, "unknown algorithm"},
		{"bad initializer", `{"instance":"g","initializer":"magic"}`, Caps{}, "unknown initializer"},
		{"negative threads", `{"instance":"g","threads":-1}`, Caps{}, "threads"},
		{"too many threads", `{"instance":"g","threads":9}`, Caps{MaxThreads: 8}, "threads"},
		{"negative deadline", `{"instance":"g","deadline_ms":-5}`, Caps{}, "deadline_ms"},
		{"bad class", `{"instance":"g","class":"vip"}`, Caps{}, "unknown class"},
		{"vector too big", `{"instance":"g","mate_x":[1,2,3]}`, Caps{MaxVector: 2}, "entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest([]byte(tc.body), tc.caps)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("err = %v", err)
				}
				if req.Class != ClassInteractive {
					t.Fatalf("class = %q", req.Class)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
			var bad *BadRequestError
			if !errorAs(err, &bad) {
				t.Fatalf("err type %T, want *BadRequestError", err)
			}
		})
	}
}

func errorAs(err error, target *(*BadRequestError)) bool {
	e, ok := err.(*BadRequestError)
	if ok {
		*target = e
	}
	return ok
}

// ---- admission -------------------------------------------------------------

func TestAdmissionIdleAdmitsShortDeadline(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InteractiveSlots: 1})
	// An idle server must admit even a nearly expired request: shed
	// prediction applies only when the request would have to queue.
	release, err := a.Admit(context.Background(), ClassInteractive, time.Now().Add(time.Millisecond))
	if err != nil {
		t.Fatalf("idle admit: %v", err)
	}
	release()
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InteractiveSlots: 1, MaxQueue: 1})
	far := time.Now().Add(time.Hour)
	hold, err := a.Admit(context.Background(), ClassInteractive, far)
	if err != nil {
		t.Fatal(err)
	}

	waited := make(chan error, 1)
	go func() {
		rel, err := a.Admit(context.Background(), ClassInteractive, far)
		if err == nil {
			rel()
		}
		waited <- err
	}()
	// Wait until the second request occupies the queue slot.
	for i := 0; ; i++ {
		if a.Stats()[0].Queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = a.Admit(context.Background(), ClassInteractive, far)
	shed, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}

	hold()
	if err := <-waited; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

func TestAdmissionPredictedWaitSheds(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InteractiveSlots: 1, MaxQueue: 100})
	hold, err := a.Admit(context.Background(), ClassInteractive, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	// With the slot held, the EWMA (seeded at 250ms) predicts a wait far
	// beyond a 1ms deadline: shed immediately, don't queue doomed work.
	_, err = a.Admit(context.Background(), ClassInteractive, time.Now().Add(time.Millisecond))
	if _, ok := err.(*ShedError); !ok {
		t.Fatalf("err = %v, want *ShedError", err)
	}
}

func TestAdmissionClassesAreIndependent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InteractiveSlots: 1, BatchSlots: 1})
	far := time.Now().Add(time.Hour)
	rel1, err := a.Admit(context.Background(), ClassInteractive, far)
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	// The interactive slot being held must not block batch.
	rel2, err := a.Admit(context.Background(), ClassBatch, far)
	if err != nil {
		t.Fatalf("batch admit: %v", err)
	}
	rel2()
}

// ---- single flight / cache -------------------------------------------------

func TestSingleFlightCollapse(t *testing.T) {
	c := newResultCache()
	key := cacheKey{seed: 42}

	res, fl, leader := c.begin(key)
	if res != nil || !leader {
		t.Fatalf("first begin: res=%v leader=%v", res, leader)
	}
	res2, fl2, leader2 := c.begin(key)
	if res2 != nil || leader2 || fl2 == nil {
		t.Fatalf("second begin: res=%v leader=%v fl=%v", res2, leader2, fl2)
	}

	done := make(chan *graftmatch.Result, 1)
	go func() {
		<-fl2.done
		done <- fl2.res
	}()

	want := &graftmatch.Result{Cardinality: 7, Complete: true}
	c.finish(key, fl, want)
	if got := <-done; got != want {
		t.Fatalf("follower got %v, want %v", got, want)
	}
	// Completed result is now cached.
	res3, _, leader3 := c.begin(key)
	if res3 != want || leader3 {
		t.Fatalf("third begin: res=%v leader=%v", res3, leader3)
	}
}

func TestIncompleteResultsNotCached(t *testing.T) {
	c := newResultCache()
	key := cacheKey{seed: 1}
	_, fl, _ := c.begin(key)
	c.finish(key, fl, &graftmatch.Result{Cardinality: 3, Complete: false})
	res, _, leader := c.begin(key)
	if res != nil || !leader {
		t.Fatalf("incomplete result was cached: res=%v leader=%v", res, leader)
	}
}

func TestLastGoodKeepsBest(t *testing.T) {
	c := newResultCache()
	c.noteResult("g", "a", &graftmatch.Result{Cardinality: 5, Complete: false})
	c.noteResult("g", "b", &graftmatch.Result{Cardinality: 9, Complete: true})
	c.noteResult("g", "c", &graftmatch.Result{Cardinality: 7, Complete: false}) // worse: ignored
	lg, ok := c.getLastGood("g")
	if !ok || lg.Cardinality != 9 || !lg.Complete || lg.Engine != "b" {
		t.Fatalf("lastGood = %+v ok=%v", lg, ok)
	}
}

// ---- HTTP endpoints --------------------------------------------------------

func smallRegistry(t *testing.T) func(dir string) {
	return func(dir string) {
		writeGraph(t, filepath.Join(dir, "small.el"), 200, 200, 3, 11, false)
		writeGraph(t, filepath.Join(dir, "square.el"), 40, 40, 2, 12, true)
	}
}

func TestMatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))

	code, data := postJSON(t, ts.URL+"/match", `{"instance":"small","mates":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	m := decodeMatch(t, data)
	if !m.Complete || m.Degraded || m.Source != "computed" {
		t.Fatalf("first match = %+v", m)
	}
	if len(m.MateX) != 200 || len(m.MateY) != 200 {
		t.Fatalf("mates %d/%d", len(m.MateX), len(m.MateY))
	}

	// Identical request: served from cache.
	code, data = postJSON(t, ts.URL+"/match", `{"instance":"small","mates":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if m2 := decodeMatch(t, data); m2.Source != "cache" || m2.Cardinality != m.Cardinality {
		t.Fatalf("second match = %+v, want cache of |M|=%d", m2, m.Cardinality)
	}

	// no_cache forces a fresh run.
	code, data = postJSON(t, ts.URL+"/match", `{"instance":"small","no_cache":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if m3 := decodeMatch(t, data); m3.Source != "computed" || m3.Cardinality != m.Cardinality {
		t.Fatalf("no_cache match = %+v", m3)
	}
}

func TestMatchEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	if code, _ := postJSON(t, ts.URL+"/match", `{"instance":"nope"}`); code != http.StatusNotFound {
		t.Fatalf("unknown instance: status %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/match", `{broken`); code != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /match: status %d", resp.StatusCode)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	_, data := postJSON(t, ts.URL+"/match", `{"instance":"small","mates":true}`)
	m := decodeMatch(t, data)

	body, _ := json.Marshal(map[string]any{"instance": "small", "mate_x": m.MateX, "mate_y": m.MateY})
	code, data := postJSON(t, ts.URL+"/verify", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var v VerifyResponse
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Valid || !v.Maximum {
		t.Fatalf("verify = %+v", v)
	}

	// Corrupt the matching: point two X vertices at the same Y.
	bad := append([]int32(nil), m.MateX...)
	first := -1
	for i, y := range bad {
		if y < 0 {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		bad[i] = bad[first]
		break
	}
	body, _ = json.Marshal(map[string]any{"instance": "small", "mate_x": bad, "mate_y": m.MateY})
	_, data = postJSON(t, ts.URL+"/verify", string(body))
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Valid || v.Reason == "" {
		t.Fatalf("corrupted verify = %+v, want invalid with reason", v)
	}
}

func TestDecomposeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	code, data := postJSON(t, ts.URL+"/decompose", `{"instance":"square","mates":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var d DecomposeResponse
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Match.Complete {
		t.Fatalf("decompose rode an incomplete matching: %+v", d.Match)
	}
	if d.HRows+d.SSize+d.VRows != 40 {
		t.Fatalf("row parts %d+%d+%d != 40", d.HRows, d.SSize, d.VRows)
	}
	if len(d.RowPerm) != 40 || len(d.ColPerm) != 40 {
		t.Fatalf("perm lengths %d/%d", len(d.RowPerm), len(d.ColPerm))
	}
	if d.Blocks <= 0 || d.LargestBlock <= 0 {
		t.Fatalf("blocks=%d largest=%d", d.Blocks, d.LargestBlock)
	}
}

func TestSolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	code, data := postJSON(t, ts.URL+"/btfsolve", `{"instance":"square"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var sol SolveResponse
	if err := json.Unmarshal(data, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.N != 40 || len(sol.X) != 40 || sol.Blocks <= 0 {
		t.Fatalf("solve = n=%d |x|=%d blocks=%d", sol.N, len(sol.X), sol.Blocks)
	}
	// Rectangular patterns cannot be solved.
	writeRect := func(dir string) { writeGraph(t, filepath.Join(dir, "rect.el"), 10, 20, 2, 3, false) }
	_, ts2 := newTestServer(t, Config{}, writeRect)
	if code, _ := postJSON(t, ts2.URL+"/btfsolve", `{"instance":"rect"}`); code != http.StatusBadRequest {
		t.Fatalf("rectangular solve: status %d", code)
	}
}

func TestInstancesAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	resp, err := http.Get(ts.URL + "/instances")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("instances: %d %s", resp.StatusCode, data)
	}
	var listing struct {
		Instances []struct {
			Name string `json:"name"`
		} `json:"instances"`
		Admission []ClassStats `json:"admission"`
		Draining  bool         `json:"draining"`
	}
	if err := json.Unmarshal(data, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Instances) != 2 || len(listing.Admission) != 2 || listing.Draining {
		t.Fatalf("listing = %+v", listing)
	}

	for _, ep := range []string{"/healthz", "/readyz", "/metrics", "/status"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
	}
}

// TestDeadlineDegrades pins the degradation contract: a deadline far too
// small for the instance yields HTTP 200 with a valid degraded answer, never
// an error; once a complete matching exists, the same hopeless request is
// served from the last-good floor.
func TestDeadlineDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{}, func(dir string) {
		writeGraph(t, filepath.Join(dir, "big.el"), 30000, 30000, 4, 21, false)
	})

	// Phase 1: nothing cached, 1ms budget → partial result.
	code, data := postJSON(t, ts.URL+"/match",
		`{"instance":"big","deadline_ms":1,"threads":1,"initializer":"none","mates":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	m := decodeMatch(t, data)
	if !m.Degraded {
		t.Skipf("instance completed within 1ms on this machine; cannot exercise degradation (result %+v)", m)
	}
	if m.Source != "partial" && m.Source != "last-good" {
		t.Fatalf("degraded source = %q", m.Source)
	}

	// Phase 2: a full run establishes the last-good floor.
	code, data = postJSON(t, ts.URL+"/match", `{"instance":"big","deadline_ms":60000}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	full := decodeMatch(t, data)
	if !full.Complete {
		t.Fatalf("full run incomplete: %+v", full)
	}

	// Phase 3: the hopeless request now degrades to the complete
	// last-good matching (no_cache forces a real run attempt).
	code, data = postJSON(t, ts.URL+"/match",
		`{"instance":"big","deadline_ms":1,"threads":1,"initializer":"none","no_cache":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	m3 := decodeMatch(t, data)
	if !m3.Degraded {
		t.Skipf("instance completed within 1ms; cannot exercise last-good path (result %+v)", m3)
	}
	if m3.Source != "last-good" || m3.Cardinality != full.Cardinality || !m3.Complete {
		t.Fatalf("degraded answer = %+v, want last-good |M|=%d", m3, full.Cardinality)
	}
}

// TestDrainLosesNoAdmittedRequest pins the graceful-drain contract: once
// Drain starts, readyz flips and new work bounces with 503, but the admitted
// in-flight request still completes and Drain waits for it.
func TestDrainLosesNoAdmittedRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{}, smallRegistry(t))

	// Hold an admitted request open deterministically: a guarded handler
	// parked on a channel is exactly a long-running compute request from
	// the lifecycle's point of view.
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.guard(func(w http.ResponseWriter, _ *http.Request, _ *Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	inFlight := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodPost, "/match", strings.NewReader(`{"instance":"small"}`)))
		inFlight <- rec.Code
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Readiness flips as soon as draining is set.
	for i := 0; !s.isDraining(); i++ {
		if i > 2000 {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d", resp.StatusCode)
	}
	if code, _ := postJSON(t, ts.URL+"/match", `{"instance":"small"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: %d", code)
	}

	// Drain must still be waiting on the admitted request.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The admitted request must finish with a real answer, and only then
	// may the drain complete.
	close(release)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request: %d", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Liveness stays up through and after the drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after drain: %d", resp.StatusCode)
	}
}

// TestPanicContainment drives a panicking handler through guard and checks
// the daemon answers 500 and keeps serving.
func TestPanicContainment(t *testing.T) {
	s, ts := newTestServer(t, Config{}, smallRegistry(t))
	h := s.guard(func(http.ResponseWriter, *http.Request, *Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/match", strings.NewReader(`{"instance":"small"}`))
	h(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d", rec.Code)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d", got)
	}
	// The server still serves real traffic afterwards.
	if code, data := postJSON(t, ts.URL+"/match", `{"instance":"small"}`); code != http.StatusOK {
		t.Fatalf("after panic: %d %s", code, data)
	}
}

// TestConcurrentMixedLoad soaks the server in-process with a mix of valid,
// hopeless-deadline, and invalid requests under -race.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{InteractiveSlots: 2, BatchSlots: 1, MaxQueue: 4},
	}, smallRegistry(t))

	bodies := []string{
		`{"instance":"small"}`,
		`{"instance":"small","algorithm":"pf","class":"batch"}`,
		`{"instance":"square","seed":3}`,
		`{"instance":"small","deadline_ms":1,"no_cache":true}`,
		`{"instance":"missing"}`,
		`{bad json`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		body := bodies[i%len(bodies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
				http.StatusTooManyRequests, http.StatusInternalServerError:
			default:
				t.Errorf("unexpected status %d for %s", resp.StatusCode, body)
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
		}()
	}
	wg.Wait()
}

// TestCheckpointRestoreSeedsLastGood proves the cross-process degradation
// floor: a checkpoint written by one server process becomes the next
// process's last-good answer before it has computed anything.
func TestCheckpointRestoreSeedsLastGood(t *testing.T) {
	ckptDir := t.TempDir()
	populate := func(dir string) {
		writeGraph(t, filepath.Join(dir, "small.el"), 200, 200, 3, 11, false)
	}

	_, ts := newTestServer(t, Config{CheckpointDir: ckptDir}, populate)
	_, data := postJSON(t, ts.URL+"/match", `{"instance":"small"}`)
	first := decodeMatch(t, data)
	if !first.Complete {
		t.Fatalf("first run incomplete: %+v", first)
	}

	// A fresh server process on the same checkpoint dir starts with the
	// floor already in place.
	s2, _ := newTestServer(t, Config{CheckpointDir: ckptDir}, populate)
	lg, ok := s2.cache.getLastGood("small")
	if !ok {
		t.Fatal("restored server has no last-good floor")
	}
	if lg.Cardinality != first.Cardinality {
		t.Fatalf("restored floor |M|=%d, want %d", lg.Cardinality, first.Cardinality)
	}
}
