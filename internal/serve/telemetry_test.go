package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graftmatch/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing request log
// lines written from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// isHex16 reports whether s is a 16-char lowercase hex string — the shape of
// every minted request id (it is the trace id's hex form, verbatim).
func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TestRequestIDOnAllResponses pins the correlation contract: every response
// — success, client error, load shed, panic — carries an X-Request-Id
// header; a sane inbound id is echoed back, anything else gets a minted id.
func TestRequestIDOnAllResponses(t *testing.T) {
	logBuf := &syncBuffer{}
	s, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{InteractiveSlots: 1, MaxQueue: 1},
		Log:       logBuf,
	}, smallRegistry(t))

	// Success: minted id, 16-hex (so it is greppable in /trace verbatim).
	resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader(`{"instance":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); !isHex16(id) {
		t.Errorf("success response: X-Request-Id = %q, want minted 16-hex id", id)
	}

	// Inbound id honored and echoed.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/match", strings.NewReader(`{"instance":"small"}`))
	req.Header.Set("X-Request-Id", "client-abc-123")
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "client-abc-123" {
		t.Errorf("inbound id: echoed %q, want client-abc-123", id)
	}

	// Garbage inbound id (control chars) is replaced by a minted one. The
	// stdlib client refuses to even send such a header, so drive the handler
	// in-process with the header forced onto the map.
	grr := httptest.NewRecorder()
	greq := httptest.NewRequest(http.MethodPost, "/match", strings.NewReader(`{"instance":"small"}`))
	greq.Header["X-Request-Id"] = []string{"bad\x01id"}
	s.Handler().ServeHTTP(grr, greq)
	if id := grr.Header().Get("X-Request-Id"); !isHex16(id) {
		t.Errorf("garbage inbound id: got %q, want minted 16-hex id", id)
	}

	// Client error (400): header still present.
	resp, err = http.Post(ts.URL+"/match", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-Id"); !isHex16(id) {
		t.Errorf("400 response: X-Request-Id = %q, want minted id", id)
	}

	// Load shed (429): occupy the only interactive slot, then ask with a
	// hopeless deadline so admission sheds instead of queueing doomed work.
	release, err := s.adm.Admit(context.Background(), ClassInteractive, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/match", "application/json",
		strings.NewReader(`{"instance":"small","deadline_ms":1,"no_cache":true,"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	release()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d, want 429", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-Id"); !isHex16(id) {
		t.Errorf("429 response: X-Request-Id = %q, want minted id", id)
	}

	// Panic (500): drive the full middleware chain around a panicking
	// handler; the header must have been set before the handler ran.
	h := s.withRequestID(s.guard(func(http.ResponseWriter, *http.Request, *Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/match", strings.NewReader(`{"instance":"small"}`)))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panic: status %d, want 500", rr.Code)
	}
	if id := rr.Header().Get("X-Request-Id"); !isHex16(id) {
		t.Errorf("500 response: X-Request-Id = %q, want minted id", id)
	}

	// The log captured one line per request, each with id + trace, and the
	// shed and panic lines carry their event markers.
	var sawShed, sawPanic int
	for _, raw := range bytes.Split(bytes.TrimSpace(logBuf.Bytes()), []byte("\n")) {
		var line struct {
			ID     string `json:"id"`
			Trace  string `json:"trace"`
			Status int    `json:"status"`
			Event  string `json:"event"`
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("log line %s: %v", raw, err)
		}
		if line.ID == "" || !isHex16(line.Trace) {
			t.Errorf("log line missing correlation: %s", raw)
		}
		switch line.Event {
		case "shed":
			sawShed++
		case "panic":
			sawPanic++
		}
	}
	if sawShed != 1 || sawPanic != 1 {
		t.Errorf("log events: shed=%d panic=%d, want 1 each", sawShed, sawPanic)
	}
}

// TestRequestIDAppearsInTrace pins the correlation loop end to end inside
// the process: the minted X-Request-Id returned to the client appears
// verbatim as a trace tag on the request's spans in /trace.
func TestRequestIDAppearsInTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader(`{"instance":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if !isHex16(id) {
		t.Fatalf("X-Request-Id = %q, want minted 16-hex id", id)
	}
	tr, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(tr.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(id)) {
		t.Errorf("/trace does not contain the response's request id %s", id)
	}
}

// TestRequestsEndpoint pins the /requests live-inflight table: a running
// compute request is visible with its id, endpoint, and state while
// inflight, and gone once finished.
func TestRequestsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{}, smallRegistry(t))

	// Park a request on the table directly (the HTTP path would finish too
	// fast to observe reliably), alongside one real finished request.
	tok := s.rec.ReqBegin(obs.ReqInfo{
		ID: "feedfacefeedface", Trace: "feedfacefeedface",
		Endpoint: "/match", Instance: "small", State: "received",
		StartedAt: time.Now().UnixNano(),
	})
	s.rec.ReqState(tok, "running")
	defer s.rec.ReqEnd(tok)

	resp, err := http.Get(ts.URL + "/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []obs.ReqInfo
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rows {
		if row.ID == "feedfacefeedface" {
			found = true
			if row.State != "running" || row.Endpoint != "/match" || row.Instance != "small" {
				t.Errorf("inflight row = %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("parked request not in /requests: %+v", rows)
	}

	s.rec.ReqEnd(tok)
	resp2, err := http.Get(ts.URL + "/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rows = nil
	if err := json.NewDecoder(resp2.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.ID == "feedfacefeedface" {
			t.Errorf("finished request still on /requests: %+v", row)
		}
	}
}

// TestLatencyExemplarLinksTrace pins the exemplar satellite: after a served
// request, the latency histogram exposition carries an OpenMetrics-style
// exemplar whose trace_id is the request's trace.
func TestLatencyExemplarLinksTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{}, smallRegistry(t))
	resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader(`{"instance":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(m.Body); err != nil {
		t.Fatal(err)
	}
	want := `# {trace_id="` + id + `"}`
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("/metrics has no exemplar %s for the served request", want)
	}
}
