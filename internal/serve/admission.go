package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Default admission parameters; see AdmissionConfig.
const (
	DefaultInteractiveSlots = 4
	DefaultBatchSlots       = 1
	DefaultMaxQueue         = 64
	defaultServiceEstimate  = 250 * time.Millisecond
)

// AdmissionConfig sizes the admission controller. The zero value applies the
// package defaults.
type AdmissionConfig struct {
	// InteractiveSlots and BatchSlots are the per-class concurrency
	// limits: at most this many requests of a class compute at once.
	// 0 means the default; negative means 1.
	InteractiveSlots int
	BatchSlots       int

	// MaxQueue bounds how many admitted-but-waiting requests a class may
	// hold. A request arriving past the bound is shed immediately with
	// 429 + Retry-After instead of joining a queue that can only grow.
	// 0 means DefaultMaxQueue.
	MaxQueue int
}

func slots(n, def int) int {
	switch {
	case n == 0:
		return def
	case n < 0:
		return 1
	default:
		return n
	}
}

// ShedError reports a request turned away by admission control: the caller
// maps it to 429 with RetryAfter as the backoff hint.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// classState is one admission class: a slot semaphore, a queue-depth
// counter, and an EWMA of recent service times for wait prediction.
type classState struct {
	name   string
	sem    chan struct{}
	queued atomic.Int64 // admitted but not yet holding a slot
	active atomic.Int64 // holding a slot
	ewmaNS atomic.Int64 // service-time EWMA, nanoseconds
}

// estimate predicts the queue wait for a request arriving with `ahead`
// requests queued in front of it: every `cap(sem)` departures free one full
// round of slots.
func (c *classState) estimate(ahead int64) time.Duration {
	ewma := time.Duration(c.ewmaNS.Load())
	rounds := ahead/int64(cap(c.sem)) + 1
	return time.Duration(rounds) * ewma
}

// observe folds one completed service time into the EWMA (α = 1/4).
func (c *classState) observe(d time.Duration) {
	for {
		old := c.ewmaNS.Load()
		next := old + (int64(d)-old)/4
		if c.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// Admission is the bounded run queue in front of the compute path. Each
// class owns a fixed number of slots; requests past the slot count wait in a
// bounded queue, and requests that would overflow the queue — or provably
// miss their deadline just waiting in it — are shed with a Retry-After hint
// derived from the class's recent service times.
type Admission struct {
	classes  map[string]*classState
	maxQueue int64
}

// NewAdmission builds the controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	mk := func(name string, n int) *classState {
		c := &classState{name: name, sem: make(chan struct{}, n)}
		c.ewmaNS.Store(int64(defaultServiceEstimate))
		return c
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	return &Admission{
		classes: map[string]*classState{
			ClassInteractive: mk(ClassInteractive, slots(cfg.InteractiveSlots, DefaultInteractiveSlots)),
			ClassBatch:       mk(ClassBatch, slots(cfg.BatchSlots, DefaultBatchSlots)),
		},
		maxQueue: int64(maxQueue),
	}
}

// Admit blocks until the request holds a compute slot of its class, then
// returns a release function the caller must invoke when the computation
// ends. It sheds (*ShedError) when the class queue is full or the predicted
// queue wait alone would exceed the request's deadline, and reports the
// context's error if ctx ends while waiting. The deadline must also be on
// ctx; Admit uses it only for the shed prediction.
func (a *Admission) Admit(ctx context.Context, class string, deadline time.Time) (release func(), err error) {
	c, ok := a.classes[class]
	if !ok {
		return nil, badRequestf("unknown class %q", class)
	}

	// Fast path: a free slot admits immediately — shed prediction applies
	// only to requests forced to queue, so an idle server never turns a
	// short-deadline request away.
	select {
	case c.sem <- struct{}{}:
		return c.acquired(), nil
	default:
	}

	q := c.queued.Add(1)
	if q > a.maxQueue {
		c.queued.Add(-1)
		return nil, &ShedError{
			Reason:     fmt.Sprintf("class %q queue full (%d waiting)", class, q-1),
			RetryAfter: c.estimate(q - 1),
		}
	}
	if wait := c.estimate(q - 1); time.Now().Add(wait).After(deadline) {
		c.queued.Add(-1)
		return nil, &ShedError{
			Reason:     fmt.Sprintf("predicted queue wait %v exceeds request deadline", wait.Round(time.Millisecond)),
			RetryAfter: wait,
		}
	}

	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		c.queued.Add(-1)
		return nil, ctx.Err()
	}
	c.queued.Add(-1)
	return c.acquired(), nil
}

// acquired books a just-taken slot and returns its idempotent release.
func (c *classState) acquired() func() {
	c.active.Add(1)
	start := time.Now()
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		c.observe(time.Since(start))
		c.active.Add(-1)
		<-c.sem
	}
}

// ClassStats is a point-in-time admission snapshot for one class.
type ClassStats struct {
	Class     string  `json:"class"`
	Slots     int     `json:"slots"`
	Active    int64   `json:"active"`
	Queued    int64   `json:"queued"`
	ServiceMS float64 `json:"service_ewma_ms"`
}

// Stats snapshots every class, interactive first.
func (a *Admission) Stats() []ClassStats {
	out := make([]ClassStats, 0, len(a.classes))
	for _, name := range []string{ClassInteractive, ClassBatch} {
		c := a.classes[name]
		out = append(out, ClassStats{
			Class:     c.name,
			Slots:     cap(c.sem),
			Active:    c.active.Load(),
			Queued:    c.queued.Load(),
			ServiceMS: float64(c.ewmaNS.Load()) / 1e6,
		})
	}
	return out
}
