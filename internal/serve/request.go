package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"graftmatch"
)

// Default request-decoder caps; see Caps.
const (
	DefaultMaxBody    int64 = 8 << 20 // JSON body bytes (mate arrays dominate)
	DefaultMaxName    int   = 256     // instance name length
	DefaultMaxThreads int   = 1 << 12
	DefaultMaxVector  int   = 1 << 24 // entries in a mate/b vector
)

// Caps bounds what the request decoder accepts, in the same spirit as
// mmio.Limits: every size is checked before (body cap) or immediately after
// (field caps) the allocation it would drive, so a hostile request cannot
// make the daemon allocate unboundedly. The zero value applies the package
// defaults.
type Caps struct {
	// MaxBody caps the request body in bytes; 0 means DefaultMaxBody.
	// This is the true allocation bound: a JSON payload cannot expand into
	// more decoded vector entries than it has bytes.
	MaxBody int64

	// MaxName caps the instance name length; 0 means DefaultMaxName.
	MaxName int

	// MaxThreads caps the per-request thread count; 0 means
	// DefaultMaxThreads.
	MaxThreads int

	// MaxVector caps the entries of the mate_x/mate_y/b vectors;
	// 0 means DefaultMaxVector.
	MaxVector int
}

func (c Caps) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return DefaultMaxBody
}

func (c Caps) maxName() int {
	if c.MaxName > 0 {
		return c.MaxName
	}
	return DefaultMaxName
}

func (c Caps) maxThreads() int {
	if c.MaxThreads > 0 {
		return c.MaxThreads
	}
	return DefaultMaxThreads
}

func (c Caps) maxVector() int {
	if c.MaxVector > 0 {
		return c.MaxVector
	}
	return DefaultMaxVector
}

// Request is the JSON body shared by the POST endpoints. Endpoint-specific
// fields are ignored elsewhere: mate_x/mate_y belong to /verify, b to
// /btfsolve.
type Request struct {
	// Instance names the registry graph to operate on. Required.
	Instance string `json:"instance"`

	// Algorithm and Initializer select the engine configuration; empty
	// means msbfsgraft with Karp–Sipser, the paper's recommendation.
	Algorithm   string `json:"algorithm,omitempty"`
	Initializer string `json:"initializer,omitempty"`

	// Threads is the per-request worker count (0 = server default). The
	// workers come from the server's shared pool either way; this only
	// sets how many region slices the run splits into.
	Threads int `json:"threads,omitempty"`

	// Seed drives the randomized initializers.
	Seed int64 `json:"seed,omitempty"`

	// DeadlineMS bounds the request's wall-clock time in milliseconds;
	// 0 means the server's default deadline. A request that reaches its
	// deadline receives a degraded answer (last-good or partial), not an
	// error.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Class is the admission class ("interactive" by default, or "batch");
	// each class has its own concurrency limit.
	Class string `json:"class,omitempty"`

	// Mates includes the mate arrays in the response (they dominate the
	// response size, so they are opt-in).
	Mates bool `json:"mates,omitempty"`

	// NoCache bypasses the result cache (the computation still populates
	// it).
	NoCache bool `json:"no_cache,omitempty"`

	// MateX/MateY are the matching to check; /verify only.
	MateX []int32 `json:"mate_x,omitempty"`
	MateY []int32 `json:"mate_y,omitempty"`

	// B is the right-hand side of the linear system; /btfsolve only.
	// Empty means the all-ones vector.
	B []float64 `json:"b,omitempty"`
}

// algorithmByName mirrors cmd/maxmatch's -algo vocabulary.
var algorithmByName = map[string]graftmatch.Algorithm{
	"":           graftmatch.MSBFSGraft,
	"msbfsgraft": graftmatch.MSBFSGraft,
	"msbfs":      graftmatch.MSBFS,
	"diropt":     graftmatch.MSBFSDirOpt,
	"pf":         graftmatch.PothenFan,
	"pr":         graftmatch.PushRelabel,
	"hk":         graftmatch.HopcroftKarp,
	"ssbfs":      graftmatch.SSBFS,
	"ssdfs":      graftmatch.SSDFS,
}

// initializerByName mirrors cmd/maxmatch's -init vocabulary.
var initializerByName = map[string]graftmatch.Initializer{
	"":        graftmatch.KarpSipser,
	"ks":      graftmatch.KarpSipser,
	"greedy":  graftmatch.Greedy,
	"pgreedy": graftmatch.ParallelGreedy,
	"pks":     graftmatch.ParallelKarpSipser,
	"none":    graftmatch.NoInit,
}

// knownClasses are the admission classes a request may name; "" maps to
// ClassInteractive.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// DecodeRequest parses and validates one request body under caps. Every
// failure is a *BadRequestError suitable for a 400 response; the decoder
// never panics on arbitrary input and never allocates beyond a small factor
// of min(len(body), caps.MaxBody).
func DecodeRequest(body []byte, caps Caps) (*Request, error) {
	if int64(len(body)) > caps.maxBody() {
		return nil, badRequestf("request body %d bytes exceeds limit %d", len(body), caps.maxBody())
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequestf("malformed JSON: %v", err)
	}
	if req.Instance == "" {
		return nil, badRequestf("missing \"instance\"")
	}
	if len(req.Instance) > caps.maxName() {
		return nil, badRequestf("instance name %d bytes exceeds limit %d", len(req.Instance), caps.maxName())
	}
	if _, ok := algorithmByName[strings.ToLower(req.Algorithm)]; !ok {
		return nil, badRequestf("unknown algorithm %q", req.Algorithm)
	}
	if _, ok := initializerByName[strings.ToLower(req.Initializer)]; !ok {
		return nil, badRequestf("unknown initializer %q", req.Initializer)
	}
	if req.Threads < 0 || req.Threads > caps.maxThreads() {
		return nil, badRequestf("threads %d outside [0, %d]", req.Threads, caps.maxThreads())
	}
	if req.DeadlineMS < 0 {
		return nil, badRequestf("negative deadline_ms %d", req.DeadlineMS)
	}
	switch req.Class {
	case "", ClassInteractive, ClassBatch:
	default:
		return nil, badRequestf("unknown class %q (want %q or %q)", req.Class, ClassInteractive, ClassBatch)
	}
	if req.Class == "" {
		req.Class = ClassInteractive
	}
	for _, v := range [...]struct {
		name string
		n    int
	}{{"mate_x", len(req.MateX)}, {"mate_y", len(req.MateY)}, {"b", len(req.B)}} {
		if v.n > caps.maxVector() {
			return nil, badRequestf("%s has %d entries, limit %d", v.name, v.n, caps.maxVector()) //lint:ignore hotpath-alloc over-cap rejection exits a three-entry validation loop
		}
	}
	return &req, nil
}

// Options maps the request onto facade options (deadline, supervision, and
// scheduler are layered on by the server).
func (r *Request) Options() graftmatch.Options {
	return graftmatch.Options{
		Algorithm:   algorithmByName[strings.ToLower(r.Algorithm)],
		Initializer: initializerByName[strings.ToLower(r.Initializer)],
		Threads:     r.Threads,
		Seed:        r.Seed,
	}
}

// Deadline resolves the request deadline against the server's default and
// ceiling. A request asking for more than max is clamped, not rejected: the
// server's ceiling is a protection, and a degraded answer at the ceiling
// beats a 400.
func (r *Request) Deadline(now time.Time, def, max time.Duration) time.Time {
	d := time.Duration(r.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return now.Add(d)
}

// BadRequestError marks a request rejected by validation (a 400, as opposed
// to a shed 429 or an internal 500).
type BadRequestError struct{ Reason string }

func (e *BadRequestError) Error() string { return "serve: bad request: " + e.Reason }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{Reason: fmt.Sprintf(format, args...)}
}

// MatchResponse is the JSON result of /match (and the embedded matching part
// of /decompose).
type MatchResponse struct {
	Instance    string `json:"instance"`
	Algorithm   string `json:"algorithm"`
	Cardinality int64  `json:"cardinality"`
	Complete    bool   `json:"complete"`

	// Degraded marks an answer that is not the freshly computed maximum
	// the request asked for: the run hit its deadline or its engines
	// stalled, and the response carries the best available state instead
	// of an error. Source says which: "partial" (this run's consistent
	// partial matching) or "last-good" (the newest complete or partial
	// matching any earlier run produced for this instance).
	Degraded bool   `json:"degraded,omitempty"`
	Source   string `json:"source"` // computed | cache | inflight | last-good | partial

	InitialCardinality int64   `json:"initial_cardinality,omitempty"`
	Phases             int64   `json:"phases,omitempty"`
	RuntimeMS          float64 `json:"runtime_ms"`
	Engine             string  `json:"engine,omitempty"` // supervision ladder rung that answered

	MateX []int32 `json:"mate_x,omitempty"`
	MateY []int32 `json:"mate_y,omitempty"`
}

// VerifyResponse is the JSON result of /verify.
type VerifyResponse struct {
	Instance string `json:"instance"`
	Valid    bool   `json:"valid"`
	Maximum  bool   `json:"maximum"`
	Reason   string `json:"reason,omitempty"`
}

// DecomposeResponse is the JSON result of /decompose: the coarse and fine
// Dulmage–Mendelsohn structure (permutations are large, so opt-in via
// mates).
type DecomposeResponse struct {
	Instance string        `json:"instance"`
	Match    MatchResponse `json:"match"`

	HRows        int32   `json:"h_rows"`
	HCols        int32   `json:"h_cols"`
	SSize        int32   `json:"s_size"`
	VRows        int32   `json:"v_rows"`
	VCols        int32   `json:"v_cols"`
	Blocks       int     `json:"blocks"`
	LargestBlock int32   `json:"largest_block"`
	RowPerm      []int32 `json:"row_perm,omitempty"`
	ColPerm      []int32 `json:"col_perm,omitempty"`
}

// SolveResponse is the JSON result of /btfsolve.
type SolveResponse struct {
	Instance  string    `json:"instance"`
	N         int32     `json:"n"`
	Blocks    int       `json:"blocks"`
	RuntimeMS float64   `json:"runtime_ms"`
	X         []float64 `json:"x"`
}

// ErrorResponse is the JSON error shape of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`

	// RetryAfterMS accompanies a 429: how long the client should back off
	// before retrying (also sent as a Retry-After header, in seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}
