// Package serve is the matching-as-a-service layer under cmd/matchd: a
// long-lived HTTP daemon that loads a registry of named graph instances and
// serves match / verify / DM-decompose / BTF-solve requests to many
// concurrent clients.
//
// Robustness is the core design, not an afterthought. Per-request cost in
// bipartite matching is wildly instance-dependent (Chandran–Hochbaum), so
// the layer is built around four defenses:
//
//   - an admission controller with a bounded run queue and per-class
//     concurrency limits that sheds load with 429 + Retry-After instead of
//     letting the queue collapse;
//   - per-request deadlines propagated into the engines' MatchContext
//     semantics, so an over-budget run stops at a consistent boundary and
//     yields a valid partial matching, never a hung connection;
//   - a degradation ladder: a stalled or wedged engine is superseded by
//     fallbacks (internal/supervise), and a request that still cannot finish
//     degrades to the last-good matching for its instance rather than
//     failing;
//   - one shared worker pool across all requests (par.Pool), so total
//     compute parallelism stays bounded no matter the offered load.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"graftmatch"
	"graftmatch/internal/checkpoint"
)

// Instance is one named graph in the registry, loaded once at startup and
// immutable afterwards.
type Instance struct {
	Name        string
	Path        string
	Graph       *graftmatch.Graph
	Fingerprint checkpoint.Fingerprint
}

// Registry maps instance names to loaded graphs. It is immutable after
// LoadRegistry, so lookups need no locking.
type Registry struct {
	byName map[string]*Instance
	names  []string
}

// graphExts are the file suffixes LoadRegistry admits (ReadGraphFile's
// dispatch set).
var graphExts = []string{".mtx", ".el", ".txt", ".mtx.gz", ".el.gz", ".txt.gz"}

// instanceName derives the registry name from a file name: the base with
// every graph extension stripped ("web-Google.mtx.gz" → "web-Google").
func instanceName(file string) (string, bool) {
	for _, ext := range graphExts {
		if strings.HasSuffix(file, ext) {
			return strings.TrimSuffix(file, ext), true
		}
	}
	return "", false
}

// LoadRegistry loads every graph file in dir as a named instance. Non-graph
// files are ignored; an unreadable or malformed graph file fails the load
// (a daemon must not come up ready with a silently missing instance), as
// does a directory yielding no instances or two files claiming one name.
func LoadRegistry(dir string) (*Registry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: registry: %w", err)
	}
	r := &Registry{byName: make(map[string]*Instance)}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, ok := instanceName(e.Name())
		if !ok || name == "" {
			continue
		}
		if prev, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("serve: registry: instance %q defined by both %s and %s",
				name, prev.Path, e.Name()) //lint:ignore hotpath-alloc duplicate-name rejection exits startup load; never steady state
		}
		path := filepath.Join(dir, e.Name())
		g, err := graftmatch.ReadGraphFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: registry: %s: %w", path, err) //lint:ignore hotpath-alloc unreadable-file rejection exits startup load
		}
		//lint:ignore hotpath-alloc startup-only: one Instance per registry file, loaded once per process
		r.byName[name] = &Instance{
			Name:        name,
			Path:        path,
			Graph:       g,
			Fingerprint: checkpoint.GraphFingerprint(g),
		}
		r.names = append(r.names, name)
	}
	if len(r.names) == 0 {
		return nil, fmt.Errorf("serve: registry: no graph files in %s", dir)
	}
	sort.Strings(r.names)
	return r, nil
}

// Get returns the named instance.
func (r *Registry) Get(name string) (*Instance, bool) {
	ins, ok := r.byName[name]
	return ins, ok
}

// Names returns the instance names in sorted order.
func (r *Registry) Names() []string { return r.names }
