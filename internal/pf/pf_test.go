package pf

import (
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestBasicInstances(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"path", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}), 3},
	}
	for _, c := range cases {
		for _, p := range []int{1, 4} {
			m := matching.New(c.g.NX(), c.g.NY())
			Run(c.g, m, p)
			if m.Cardinality() != c.want {
				t.Fatalf("%s p=%d: %d, want %d", c.name, p, m.Cardinality(), c.want)
			}
			if err := matching.VerifyMaximum(c.g, m); err != nil {
				t.Fatalf("%s p=%d: %v", c.name, p, err)
			}
		}
	}
}

func TestMatchesHopcroftKarpSerial(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(130, 120, 520, seed)
		a := matchinit.KarpSipser(g, seed)
		b := a.Clone()
		Run(g, a, 1)
		hk.Run(g, b)
		return a.Cardinality() == b.Cardinality() && matching.VerifyMaximum(g, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCorrectness(t *testing.T) {
	graphs := []*bipartite.Graph{
		gen.ER(500, 500, 2500, 1),
		gen.RMAT(9, 8, 0.57, 0.19, 0.19, 2),
		gen.Grid(20, 20),
		gen.RankDeficient(600, 600, 200, 3, 3),
		gen.WebLike(9, 4, 0.3, 4),
	}
	for i, g := range graphs {
		ref := matching.New(g.NX(), g.NY())
		hk.Run(g, ref)
		for _, p := range []int{2, 4, 8} {
			m := matchinit.KarpSipser(g, int64(i))
			Run(g, m, p)
			if m.Cardinality() != ref.Cardinality() {
				t.Fatalf("graph %d p=%d: %d, want %d", i, p, m.Cardinality(), ref.Cardinality())
			}
			if err := matching.VerifyMaximum(g, m); err != nil {
				t.Fatalf("graph %d p=%d: %v", i, p, err)
			}
		}
	}
}

// TestLookaheadFindsImmediateEnds: from an empty matching on a perfect
// diagonal graph, every search must finish via lookahead with a length-1
// path.
func TestLookaheadLengthOnePaths(t *testing.T) {
	var edges []bipartite.Edge
	for i := int32(0); i < 50; i++ {
		edges = append(edges, bipartite.Edge{X: i, Y: i})
		edges = append(edges, bipartite.Edge{X: i, Y: (i + 1) % 50})
	}
	g := bipartite.MustFromEdges(50, 50, edges)
	m := matching.New(50, 50)
	stats := Run(g, m, 1)
	if m.Cardinality() != 50 {
		t.Fatalf("cardinality %d", m.Cardinality())
	}
	if stats.AugPathLen != stats.AugPaths {
		t.Fatalf("lookahead missed immediate free vertices: len=%d paths=%d", stats.AugPathLen, stats.AugPaths)
	}
}

func TestFairnessTogglesAcrossPhases(t *testing.T) {
	// Multiphase instance; just ensure multiple phases run and converge.
	g := gen.ER(1500, 1500, 4500, 5)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m, 2)
	if stats.Phases < 2 {
		t.Skipf("instance solved in one phase (phases=%d)", stats.Phases)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestDeepPathIterative(t *testing.T) {
	n := int32(30000)
	var edges []bipartite.Edge
	for i := int32(0); i < n; i++ {
		edges = append(edges, bipartite.Edge{X: i, Y: i})
		if i+1 < n {
			edges = append(edges, bipartite.Edge{X: i + 1, Y: i})
		}
	}
	g := bipartite.MustFromEdges(n, n, edges)
	m := matching.New(n, n)
	Run(g, m, 2)
	if m.Cardinality() != int64(n) {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), n)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := gen.ER(200, 200, 800, 6)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m, 2)
	if stats.Algorithm != "PF" || stats.Threads != 2 {
		t.Fatalf("header: %+v", stats)
	}
	if stats.EdgesTraversed == 0 || stats.Phases == 0 || stats.AugPaths == 0 {
		t.Fatalf("accounting: %+v", stats)
	}
	if stats.FinalCardinality != m.Cardinality() {
		t.Fatalf("final cardinality mismatch")
	}
}
