// Package pf implements the Pothen–Fan algorithm with fairness: phases of
// multi-source depth-first searches with lookahead, the strongest DFS-based
// comparator in the paper (§V-A, implementation modeled on Azad et al.).
//
// Each phase resets the visited flags and launches a DFS from every
// unmatched X vertex; threads claim Y vertices with CAS so the DFS trees
// stay vertex-disjoint and each thread augments its own path immediately.
// Lookahead gives every X vertex a persistent cursor that first scans for a
// free Y neighbor before descending; fairness alternates the DFS adjacency
// scan direction between phases so deep recursion does not starve the same
// suffix of every adjacency list.
package pf

import (
	"context"
	"sync/atomic"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

const none = matching.None

// Options configures a context-aware PF run.
type Options struct {
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int

	// OnPhase, when non-nil, is invoked on the driver goroutine after every
	// completed phase (a consistent point: the mate arrays form a valid
	// matching) with the phase count and the current cardinality.
	OnPhase func(phase, cardinality int64)

	// Recorder, when non-nil, receives per-phase counters (edges, paths,
	// phases) and one span per phase. Recording happens on the driver
	// goroutine at phase boundaries only; the nil default is a no-op.
	Recorder *obs.Recorder

	// Sched supplies the workers for the parallel regions. Nil means
	// per-call goroutine fan-out; a shared *par.Pool bounds the total
	// parallelism of many concurrent runs.
	Sched par.Scheduler
}

// Run computes a maximum cardinality matching with the fair Pothen–Fan
// algorithm using p workers, updating m in place. A contained worker panic
// is re-raised in the caller; use RunCtx to receive it as an error instead.
func Run(g *bipartite.Graph, m *matching.Matching, p int) *matching.Stats {
	stats, err := RunCtx(context.Background(), g, m, Options{Threads: p})
	if err != nil {
		// Background is never cancelled: err is a contained worker panic,
		// and re-raising it is Run's documented contract.
		panic(err) //lint:ignore err-checked re-raising a contained worker panic is Run's documented contract
	}
	return stats
}

// RunCtx is Run under a cancellation context, checked at phase boundaries
// and at search granularity inside each phase. Every DFS that finds an
// augmenting path applies it atomically within its own block, so an
// interrupted phase leaves a valid matching that contains every search that
// completed; the returned stats then have Complete=false and err is the
// context's error. A contained worker panic is returned as *par.PanicError.
func RunCtx(ctx context.Context, g *bipartite.Graph, m *matching.Matching, opts Options) (*matching.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := opts.Threads
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	sched := par.SchedulerOrSpawn(opts.Sched)
	stats := &matching.Stats{Algorithm: "PF", Threads: p}
	stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	nx, ny := int(g.NX()), int(g.NY())
	visited := make([]int32, ny)
	lookahead := make([]int64, nx) // persistent lookahead cursors
	roots := make([]int32, 0, nx)

	edges := par.NewCounter(p)
	paths := par.NewCounter(p)
	lens := par.NewCounter(p)

	// Reusable per-worker DFS stacks.
	workers := make([]dfsState, p)
	for w := range workers {
		workers[w].init(nx)
	}

	rec := opts.Recorder
	mEdges := rec.Counter("graftmatch_pf_edges_traversed_total", "edges examined by PF lookahead and DFS scans")
	mPaths := rec.Counter("graftmatch_pf_augmenting_paths_total", "augmenting paths applied by PF")
	mPhases := rec.Counter("graftmatch_pf_phases_total", "completed PF phases")
	var prevEdges int64

	var err error
	fair := false
	// Phase-invariant parallel bodies, built once so the phase loop does
	// not allocate a fresh closure per iteration. Both capture variables
	// (visited, roots, fair, ...) the loop mutates in place.
	clearVisited := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			visited[i] = 0
		}
	}
	searchRoots := func(w int, lo, hi int) {
		st := &workers[w]
		for i := lo; i < hi; i++ {
			if n := st.search(g, m, roots[i], visited, lookahead, fair); n > 0 {
				paths.Add(w, 1)
				lens.Add(w, int64(n))
			}
		}
		edges.Add(w, st.edges)
		st.edges = 0
	}
	for {
		if err = ctx.Err(); err != nil {
			break // phase boundary: the matching is consistent here
		}
		phaseStart := time.Now()
		roots = roots[:0]
		for x := int32(0); x < int32(nx); x++ {
			if m.MateX[x] == none {
				roots = append(roots, x)
			}
		}
		if len(roots) == 0 {
			break
		}
		if err = sched.ForCtx(ctx, p, ny, clearVisited); err != nil {
			break
		}

		before := paths.Sum()
		if err = sched.ForDynamicCtx(ctx, p, len(roots), 1, searchRoots); err != nil {
			break
		}
		stats.Phases++
		card := m.Cardinality()
		after := paths.Sum()
		e := edges.Sum()
		mPaths.Add(0, after-before)
		mEdges.Add(0, e-prevEdges)
		prevEdges = e
		mPhases.Add(0, 1)
		rec.Span("pf", "phase", phaseStart, time.Since(phaseStart), card)
		rec.PhaseDone("PF", stats.Phases, card)
		if opts.OnPhase != nil {
			opts.OnPhase(stats.Phases, card)
		}
		fair = !fair
		if after == before {
			break
		}
	}

	stats.EdgesTraversed = edges.Sum()
	stats.AugPaths = paths.Sum()
	stats.AugPathLen = lens.Sum()
	stats.Runtime = time.Since(start)
	stats.FinalCardinality = m.Cardinality()
	stats.Complete = err == nil
	return stats, err
}

// dfsState is a worker-private iterative DFS stack. Workers mutate their
// own state (stack headers, edge counter) on every step, so the struct is
// padded to a whole number of cache lines: adjacent workers' states in the
// workers slice must not share a line.
type dfsState struct {
	pathX []int32 // X vertices on the current path
	pathY []int32 // chosen Y under each X
	iter  []int64 // next adjacency offset per depth
	edges int64
	_     [48]byte // 80 B of fields + 48 B = two cache lines
}

func (st *dfsState) init(nx int) {
	st.pathX = make([]int32, 0, 64)
	st.pathY = make([]int32, 0, 64)
	st.iter = make([]int64, 0, 64)
}

// search runs one DFS with lookahead from root x0. It returns the length of
// the augmenting path in edges, or 0 when none was found. The path is
// augmented before returning (claims make it vertex-disjoint from all
// concurrent searches).
func (st *dfsState) search(g *bipartite.Graph, m *matching.Matching, x0 int32, visited []int32, lookahead []int64, fair bool) int {
	st.pathX = st.pathX[:0]
	st.pathY = st.pathY[:0]
	st.iter = st.iter[:0]
	st.push(x0)
	xptr, xnbr := g.XPtr(), g.XNbr()

	for len(st.pathX) > 0 {
		d := len(st.pathX) - 1
		x := st.pathX[d]
		base, end := xptr[x], xptr[x+1]

		// Lookahead: advance x's persistent cursor hunting a free Y.
		foundEnd := none
		for la := lookahead[x]; la < end-base; la++ {
			y := xnbr[base+la]
			st.edges++
			if atomic.LoadInt32(&m.MateY[y]) != none {
				continue
			}
			if atomic.LoadInt32(&visited[y]) == 0 && atomic.CompareAndSwapInt32(&visited[y], 0, 1) {
				// Claimed a free Y: augmenting path ends here.
				lookahead[x] = la
				foundEnd = y
				break
			}
		}
		if foundEnd != none {
			st.pathY[d] = foundEnd
			st.augment(m)
			return 2*len(st.iter) - 1
		}
		lookahead[x] = end - base

		// Regular DFS descent; scan direction alternates with fairness.
		descended := false
		deg := end - base
		for st.iter[d] < deg {
			k := st.iter[d]
			st.iter[d]++
			off := k
			if fair {
				off = deg - 1 - k
			}
			y := xnbr[base+off]
			st.edges++
			if atomic.LoadInt32(&visited[y]) != 0 {
				continue
			}
			if !atomic.CompareAndSwapInt32(&visited[y], 0, 1) {
				continue
			}
			mate := atomic.LoadInt32(&m.MateY[y])
			if mate == none {
				// Raced free vertex missed by lookahead (its cursor had
				// already passed y): still a valid path end.
				st.pathY[d] = y
				st.augment(m)
				return 2*len(st.iter) - 1
			}
			st.pathY[d] = y
			st.push(mate)
			descended = true
			break
		}
		if !descended {
			st.pop()
		}
	}
	return 0
}

func (st *dfsState) push(x int32) {
	st.pathX = append(st.pathX, x)
	st.pathY = append(st.pathY, none)
	st.iter = append(st.iter, 0)
}

func (st *dfsState) pop() {
	d := len(st.pathX) - 1
	st.pathX = st.pathX[:d]
	st.pathY = st.pathY[:d]
	st.iter = st.iter[:d]
}

// augment flips the path on the stack with atomic stores (concurrent
// searches read mate arrays through atomic loads).
func (st *dfsState) augment(m *matching.Matching) {
	for d := range st.pathX {
		x, y := st.pathX[d], st.pathY[d]
		atomic.StoreInt32(&m.MateX[x], y)
		atomic.StoreInt32(&m.MateY[y], x)
	}
}
