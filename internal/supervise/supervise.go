// Package supervise runs matching engines under a watchdog and degrades
// gracefully when one stops making progress. It is engine-agnostic: an
// Engine is any function that computes from seed mate arrays, reports each
// completed phase, and stops at a consistent point when its context is
// cancelled — the contract every context-aware engine in this repository
// already satisfies.
//
// The supervisor detects three failure modes:
//
//   - watchdog: no completed phase within Config.PhaseTimeout — the engine
//     is wedged inside a phase;
//   - stall: Config.StallPhases consecutive phases without cardinality
//     growth — the engine is running but not converging on this instance;
//   - error: the engine returned an error (a contained worker panic, or a
//     transient network failure from the distributed engine).
//
// On any of them the current engine is cancelled and the run moves down a
// caller-supplied degradation ladder, seeding the next engine with the best
// matching observed so far, so matched edges are never lost (augmenting-path
// algorithms only ever grow a matching). A cancelled engine that fails to
// stop within Config.Grace is abandoned: its goroutine keeps running on
// private state while the supervisor proceeds with the copy taken at the
// last phase boundary. Transient errors are retried in place with bounded
// exponential backoff before the ladder advances.
package supervise

import (
	"context"
	"errors"
	"sync"
	"time"

	"graftmatch/internal/obs"
)

// Progress is one phase-boundary report from a running engine. The mate
// slices alias the engine's live arrays and are only valid for the duration
// of the callback; observers that keep them must copy.
type Progress struct {
	Engine      string
	Phase       int64
	Cardinality int64
	MateX       []int32
	MateY       []int32
}

// Result is what an engine run produced: the final mate arrays (owned by
// the caller after return), the cardinality, whether the matching is
// maximum, and an engine-specific payload (e.g. run statistics) that the
// supervisor carries through to the report untouched.
type Result struct {
	MateX, MateY []int32
	Cardinality  int64
	Complete     bool
	Aux          any
}

// Engine is one rung of the degradation ladder.
type Engine struct {
	// Name identifies the engine in reports and Progress callbacks.
	Name string

	// Serial marks engines that run to completion without phase reports
	// (e.g. Hopcroft–Karp); the watchdog and stall detector are disabled
	// for them, since silence is their normal operation.
	Serial bool

	// Run computes a matching starting from the seed mate arrays. It owns
	// the seed slices (the supervisor passes fresh copies), must invoke
	// onPhase at every consistent phase boundary, and must stop at such a
	// boundary when ctx is cancelled, returning the valid partial state.
	Run func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error)
}

// Outcome classifies how a rung ended.
type Outcome string

// Rung outcomes.
const (
	Completed Outcome = "completed" // reached a maximum matching
	Watchdog  Outcome = "watchdog"  // no phase within PhaseTimeout
	Stalled   Outcome = "stalled"   // StallPhases phases without growth
	Errored   Outcome = "errored"   // engine returned an error
	Abandoned Outcome = "abandoned" // ignored cancellation past Grace
	Cancelled Outcome = "cancelled" // the outer context stopped the run
)

// RungReport records one engine attempt.
type RungReport struct {
	Engine      string
	Outcome     Outcome
	Attempt     int // 1-based attempt number for this engine (transient retries)
	Phases      int64
	Cardinality int64
	Err         string // engine error, when Outcome == Errored
}

// Report is the full supervision outcome: every rung attempted, the final
// matching, and which engine produced it.
type Report struct {
	Rungs []RungReport

	// Engine names the rung that completed; empty if none did.
	Engine string

	MateX, MateY []int32
	Cardinality  int64
	Complete     bool
	Aux          any // Aux of the completing rung
}

// Config tunes the supervisor.
type Config struct {
	// PhaseTimeout is the watchdog deadline: maximum wall-clock time
	// between completed phases before the engine is declared wedged.
	// 0 disables the watchdog.
	PhaseTimeout time.Duration

	// StallPhases declares a stall after this many consecutive phases
	// without cardinality growth. 0 disables stall detection.
	StallPhases int

	// Grace bounds how long a cancelled engine may take to stop before it
	// is abandoned; 0 means 10s.
	Grace time.Duration

	// Retry bounds in-place retries of transient engine errors.
	Retry Backoff

	// Observe, when non-nil, taps every Progress report (on the engine's
	// driver goroutine, at a consistent phase boundary) — the hook the
	// checkpoint writer attaches to. Reports from an abandoned engine are
	// suppressed.
	Observe func(Progress)

	// Recorder, when non-nil, receives rung-transition counters, rung
	// status updates, and one "supervise" span per rung attempt. The nil
	// default is a no-op.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Grace <= 0 {
		c.Grace = 10 * time.Second
	}
	return c
}

// Run executes the ladder until an engine completes, the outer context is
// cancelled, or the ladder is exhausted. The returned Report always holds
// the best valid matching observed (at worst the seeds). The error is
// non-nil only when every rung failed hard (Errored) and no partial progress
// semantics apply; cancellation of the outer context returns the partial
// report with a nil error, mirroring the facade's partial-result contract.
func Run(ctx context.Context, seedX, seedY []int32, ladder []Engine, cfg Config) (*Report, error) {
	if len(ladder) == 0 {
		return nil, errors.New("supervise: empty ladder")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()

	rep := &Report{
		MateX:       clone32(seedX),
		MateY:       clone32(seedY),
		Cardinality: cardinality(seedX),
	}
	var lastErr error
	for _, eng := range ladder {
		for attempt := 1; ; attempt++ {
			cfg.Recorder.RungStart(eng.Name)
			rungStart := time.Now()
			res, phases, outcome, err := runRung(ctx, eng, rep.MateX, rep.MateY, cfg)
			cfg.Recorder.Span("supervise", "rung:"+eng.Name, rungStart, time.Since(rungStart), res.Cardinality)
			cfg.Recorder.RungEnd(eng.Name, string(outcome))
			rr := RungReport{
				Engine:      eng.Name,
				Outcome:     outcome,
				Attempt:     attempt,
				Phases:      phases,
				Cardinality: rep.Cardinality,
			}
			if err != nil {
				rr.Err = err.Error()
				lastErr = err
			}
			// Adopt the rung's matching when it made progress; a rung that
			// errored before its first phase returns no mates and the seeds
			// stand. Cardinality can only grow under augmentation, so the
			// max is always the newest valid state.
			if res.MateX != nil && res.MateY != nil && res.Cardinality >= rep.Cardinality {
				rep.MateX, rep.MateY, rep.Cardinality = res.MateX, res.MateY, res.Cardinality
				rr.Cardinality = res.Cardinality
			}
			rep.Rungs = append(rep.Rungs, rr)

			if outcome == Completed {
				rep.Engine = eng.Name
				rep.Complete = true
				rep.Aux = res.Aux
				return rep, nil
			}
			if outcome == Cancelled {
				return rep, nil // partial result, facade semantics
			}
			if outcome == Errored && IsTransient(err) && attempt <= cfg.Retry.Attempts {
				if !sleepCtx(ctx, cfg.Retry.Delay(attempt)) {
					return rep, nil // cancelled while backing off
				}
				continue
			}
			break // degrade to the next rung
		}
	}
	if lastErr != nil && allErrored(rep.Rungs) {
		return rep, lastErr
	}
	return rep, nil
}

func allErrored(rungs []RungReport) bool {
	for _, r := range rungs {
		if r.Outcome != Errored {
			return false
		}
	}
	return true
}

// lastGood is the supervisor's copy of the newest consistent matching,
// updated at every phase boundary on the engine's driver goroutine. After
// detach (abandonment) further stores are dropped, so a zombie engine can
// neither race the next rung nor leak progress reports.
type lastGood struct {
	mu           sync.Mutex
	detached     bool
	mateX, mateY []int32
	card, phase  int64
}

// store copies the progress state; reports false after detach.
func (lg *lastGood) store(p Progress) bool {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.detached {
		return false
	}
	lg.mateX = append(lg.mateX[:0], p.MateX...)
	lg.mateY = append(lg.mateY[:0], p.MateY...)
	lg.card, lg.phase = p.Cardinality, p.Phase
	return true
}

// detach freezes lg and returns copies of the newest state (nil mates if no
// phase ever completed).
func (lg *lastGood) detach() (mateX, mateY []int32, card, phase int64) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.detached = true
	if lg.mateX == nil {
		return nil, nil, 0, 0
	}
	return clone32(lg.mateX), clone32(lg.mateY), lg.card, lg.phase
}

type doneMsg struct {
	res Result
	err error
}

// runRung supervises one engine attempt seeded from (seedX, seedY).
func runRung(ctx context.Context, eng Engine, seedX, seedY []int32, cfg Config) (Result, int64, Outcome, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lg := &lastGood{}
	done := make(chan doneMsg, 1)
	events := make(chan [2]int64, 128)

	// The engine gets private copies of the seeds so that, if this rung is
	// later abandoned, its zombie goroutine can never mutate arrays the
	// supervisor hands to the next rung.
	sx, sy := clone32(seedX), clone32(seedY)
	go func() {
		res, err := eng.Run(rctx, sx, sy, func(p Progress) {
			if !lg.store(p) {
				return // abandoned: suppress the report
			}
			if cfg.Observe != nil {
				cfg.Observe(p)
			}
			select { // drop rather than block the engine; see stall note
			case events <- [2]int64{p.Phase, p.Cardinality}:
			default:
			}
		})
		// done has capacity 1 and this is its only send, so the buffered
		// send always succeeds even when the rung was abandoned and nobody
		// receives; the default arm makes that non-blocking guarantee local
		// instead of an invariant maintained at the make site.
		select {
		case done <- doneMsg{res, err}:
		default:
		}
	}()

	watch := !eng.Serial && cfg.PhaseTimeout > 0
	var timeC <-chan time.Time
	var timer *time.Timer
	if watch {
		timer = time.NewTimer(cfg.PhaseTimeout)
		defer timer.Stop()
		timeC = timer.C
	}

	bestCard := cardinality(seedX)
	stall := 0
	var phases int64
	for {
		select {
		case d := <-done:
			return classify(d, phases, Cancelled)
		case ev := <-events:
			phases = ev[0]
			if watch {
				// Reset the watchdog. Stop may report the timer already
				// fired with the tick still buffered; drain it so Reset
				// starts a clean deadline.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(cfg.PhaseTimeout)
			}
			if !eng.Serial && cfg.StallPhases > 0 {
				if ev[1] > bestCard {
					bestCard, stall = ev[1], 0
				} else if stall++; stall >= cfg.StallPhases {
					cancel()
					return awaitStop(done, lg, cfg.Grace, phases, Stalled)
				}
			}
		case <-timeC:
			cancel()
			return awaitStop(done, lg, cfg.Grace, phases, Watchdog)
		case <-ctx.Done():
			cancel()
			return awaitStop(done, lg, cfg.Grace, phases, Cancelled)
		}
	}
}

// classify turns an engine return into a rung outcome. trip is what the
// supervisor already decided (or Cancelled when the engine stopped on its
// own under a live supervisor).
func classify(d doneMsg, phases int64, trip Outcome) (Result, int64, Outcome, error) {
	switch {
	case d.err != nil:
		return d.res, phases, Errored, d.err
	case d.res.Complete:
		return d.res, phases, Completed, nil
	default:
		return d.res, phases, trip, nil
	}
}

// awaitStop waits for a cancelled engine to drain, up to grace; past that
// the rung is abandoned and the last consistent phase copy stands in for its
// result.
func awaitStop(done chan doneMsg, lg *lastGood, grace time.Duration, phases int64, trip Outcome) (Result, int64, Outcome, error) {
	gt := time.NewTimer(grace)
	defer gt.Stop()
	select {
	case d := <-done:
		return classify(d, phases, trip)
	case <-gt.C:
		mx, my, card, ph := lg.detach()
		if ph > phases {
			phases = ph
		}
		return Result{MateX: mx, MateY: my, Cardinality: card}, phases, Abandoned, nil
	}
}

// sleepCtx sleeps for d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func clone32(s []int32) []int32 {
	if s == nil {
		return nil
	}
	return append([]int32(nil), s...)
}

// cardinality counts matched entries in a mateX array.
func cardinality(mateX []int32) int64 {
	var c int64
	for _, y := range mateX {
		if y >= 0 {
			c++
		}
	}
	return c
}
