package supervise

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const testN = 8

func emptySeeds() ([]int32, []int32) {
	sx := make([]int32, testN)
	sy := make([]int32, testN)
	for i := range sx {
		sx[i], sy[i] = -1, -1
	}
	return sx, sy
}

// completer matches every x to the same-index y, reports one phase, and
// finishes with a maximum matching.
func completer(name string) Engine {
	return Engine{
		Name: name,
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			for i := range seedX {
				if seedX[i] == -1 && seedY[i] == -1 {
					seedX[i], seedY[i] = int32(i), int32(i)
				}
			}
			card := cardinality(seedX)
			onPhase(Progress{Engine: name, Phase: 1, Cardinality: card, MateX: seedX, MateY: seedY})
			return Result{MateX: seedX, MateY: seedY, Cardinality: card, Complete: true}, nil
		},
	}
}

// silent never reports a phase and only returns once cancelled, handing back
// its (unmodified) seeds as a valid partial state.
func silent(name string) Engine {
	return Engine{
		Name: name,
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			<-ctx.Done()
			return Result{MateX: seedX, MateY: seedY, Cardinality: cardinality(seedX)}, nil
		},
	}
}

// flatliner reports phases forever without ever growing the matching.
func flatliner(name string) Engine {
	return Engine{
		Name: name,
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			card := cardinality(seedX)
			for p := int64(1); ; p++ {
				select {
				case <-ctx.Done():
					return Result{MateX: seedX, MateY: seedY, Cardinality: card}, nil
				case <-time.After(time.Millisecond):
				}
				onPhase(Progress{Engine: name, Phase: p, Cardinality: card, MateX: seedX, MateY: seedY})
			}
		},
	}
}

type fakeTransient struct{ n int }

func (e *fakeTransient) Error() string { return fmt.Sprintf("superstep dropped (%d)", e.n) }
func (*fakeTransient) Transient() bool { return true }

func TestFirstRungCompletes(t *testing.T) {
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{completer("graft"), completer("pf")}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Engine != "graft" || rep.Cardinality != testN {
		t.Fatalf("report = %+v, want completion by graft at %d", rep, testN)
	}
	if len(rep.Rungs) != 1 || rep.Rungs[0].Outcome != Completed {
		t.Fatalf("rungs = %+v, want single Completed", rep.Rungs)
	}
}

func TestWatchdogDegrades(t *testing.T) {
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy,
		[]Engine{silent("wedged"), completer("fallback")},
		Config{PhaseTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Engine != "fallback" {
		t.Fatalf("report = %+v, want completion by fallback", rep)
	}
	if len(rep.Rungs) != 2 || rep.Rungs[0].Outcome != Watchdog {
		t.Fatalf("rungs = %+v, want [Watchdog, Completed]", rep.Rungs)
	}
}

func TestStallDegrades(t *testing.T) {
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy,
		[]Engine{flatliner("spinning"), completer("fallback")},
		Config{StallPhases: 3, PhaseTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Engine != "fallback" {
		t.Fatalf("report = %+v, want completion by fallback", rep)
	}
	if rep.Rungs[0].Outcome != Stalled {
		t.Fatalf("rung 0 = %+v, want Stalled", rep.Rungs[0])
	}
}

// TestAbandonedKeepsLastGood wedges an engine that ignores cancellation
// after reporting partial progress: the supervisor must abandon it at the
// grace deadline and seed the fallback from the last phase-boundary copy.
func TestAbandonedKeepsLastGood(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	zombie := Engine{
		Name: "zombie",
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			seedX[0], seedY[0] = 0, 0 // one real match before wedging
			onPhase(Progress{Engine: "zombie", Phase: 1, Cardinality: 1, MateX: seedX, MateY: seedY})
			<-release // ignores ctx entirely
			return Result{}, nil
		},
	}
	var mu sync.Mutex
	var seen []string
	fallback := Engine{
		Name: "fallback",
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			mu.Lock()
			seen = append(seen, fmt.Sprintf("seed0=%d", seedX[0]))
			mu.Unlock()
			return completer("fallback").Run(ctx, seedX, seedY, onPhase)
		},
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{zombie, fallback},
		Config{PhaseTimeout: 30 * time.Millisecond, Grace: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rungs[0].Outcome != Abandoned {
		t.Fatalf("rung 0 = %+v, want Abandoned", rep.Rungs[0])
	}
	if rep.Rungs[0].Cardinality != 1 {
		t.Fatalf("abandoned rung kept cardinality %d, want lastGood 1", rep.Rungs[0].Cardinality)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "seed0=0" {
		t.Fatalf("fallback seeds = %v, want the zombie's matched pair preserved", seen)
	}
	if !rep.Complete || rep.Cardinality != testN {
		t.Fatalf("report = %+v, want completion at %d", rep, testN)
	}
}

// TestAbandonedObserverSilenced asserts a detached zombie's later phase
// reports never reach Observe.
func TestAbandonedObserverSilenced(t *testing.T) {
	release := make(chan struct{})
	reported := make(chan struct{})
	zombie := Engine{
		Name: "zombie",
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			<-release // wedge immediately, ignoring ctx
			onPhase(Progress{Engine: "zombie", Phase: 2, Cardinality: 99, MateX: seedX, MateY: seedY})
			close(reported)
			return Result{}, nil
		},
	}
	var mu sync.Mutex
	var observed []string
	cfg := Config{
		PhaseTimeout: 20 * time.Millisecond,
		Grace:        20 * time.Millisecond,
		Observe: func(p Progress) {
			mu.Lock()
			observed = append(observed, p.Engine)
			mu.Unlock()
		},
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{zombie, completer("fallback")}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-reported // let the zombie fire its late report before checking
	if !rep.Complete {
		t.Fatalf("report = %+v, want completion", rep)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, e := range observed {
		if e == "zombie" {
			t.Fatalf("observed a report from the abandoned engine: %v", observed)
		}
	}
}

func TestTransientRetrySameRung(t *testing.T) {
	var calls int
	flaky := Engine{
		Name: "flaky",
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			calls++
			if calls <= 2 {
				return Result{}, fmt.Errorf("exchange: %w", &fakeTransient{calls})
			}
			return completer("flaky").Run(ctx, seedX, seedY, onPhase)
		},
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{flaky, completer("fallback")},
		Config{Retry: Backoff{Attempts: 3, Base: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "flaky" || !rep.Complete {
		t.Fatalf("report = %+v, want flaky to complete after retries", rep)
	}
	if len(rep.Rungs) != 3 || rep.Rungs[2].Attempt != 3 {
		t.Fatalf("rungs = %+v, want 3 attempts of the same rung", rep.Rungs)
	}
	for _, rr := range rep.Rungs[:2] {
		if rr.Outcome != Errored {
			t.Fatalf("rung %+v, want Errored", rr)
		}
	}
}

func TestHardErrorDegradesWithoutRetry(t *testing.T) {
	var calls int
	broken := Engine{
		Name: "broken",
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			calls++
			return Result{}, errors.New("worker panic: boom")
		},
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{broken, completer("fallback")},
		Config{Retry: Backoff{Attempts: 5, Base: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hard error retried %d times, want 1 call", calls)
	}
	if !rep.Complete || rep.Engine != "fallback" {
		t.Fatalf("report = %+v, want fallback completion", rep)
	}
	if rep.Rungs[0].Err == "" {
		t.Fatal("errored rung did not record the error string")
	}
}

func TestAllRungsErroredReturnsError(t *testing.T) {
	broken := func(name string) Engine {
		return Engine{
			Name: name,
			Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
				return Result{}, fmt.Errorf("%s: dead", name)
			},
		}
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{broken("a"), broken("b")}, Config{})
	if err == nil {
		t.Fatal("want the last hard error when every rung fails")
	}
	if rep == nil || rep.Complete {
		t.Fatalf("report = %+v, want incomplete partial report alongside the error", rep)
	}
	if rep.Cardinality != 0 {
		t.Fatalf("cardinality = %d, want the untouched seeds", rep.Cardinality)
	}
}

func TestOuterCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	slow := Engine{
		Name: "slow",
		Run: func(rctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			seedX[0], seedY[0] = 0, 0
			onPhase(Progress{Engine: "slow", Phase: 1, Cardinality: 1, MateX: seedX, MateY: seedY})
			close(started)
			<-rctx.Done()
			return Result{MateX: seedX, MateY: seedY, Cardinality: 1}, nil
		},
	}
	go func() {
		<-started
		cancel()
	}()
	sx, sy := emptySeeds()
	rep, err := Run(ctx, sx, sy, []Engine{slow, completer("never")}, Config{})
	if err != nil {
		t.Fatalf("outer cancellation must return a partial report with nil error, got %v", err)
	}
	if rep.Complete {
		t.Fatal("cancelled run reported Complete")
	}
	if rep.Cardinality != 1 {
		t.Fatalf("cardinality = %d, want the partial 1", rep.Cardinality)
	}
	if last := rep.Rungs[len(rep.Rungs)-1]; last.Outcome != Cancelled {
		t.Fatalf("last rung = %+v, want Cancelled", last)
	}
	if len(rep.Rungs) != 1 {
		t.Fatalf("ladder continued after outer cancellation: %+v", rep.Rungs)
	}
}

func TestSerialEngineSkipsWatchdog(t *testing.T) {
	slowSerial := Engine{
		Name:   "serial",
		Serial: true,
		Run: func(ctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			time.Sleep(80 * time.Millisecond) // longer than PhaseTimeout
			return completer("serial").Run(ctx, seedX, seedY, onPhase)
		},
	}
	sx, sy := emptySeeds()
	rep, err := Run(context.Background(), sx, sy, []Engine{slowSerial},
		Config{PhaseTimeout: 20 * time.Millisecond, StallPhases: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Rungs[0].Outcome != Completed {
		t.Fatalf("report = %+v, want serial engine to finish untripped", rep)
	}
}

func TestEmptyLadderErrors(t *testing.T) {
	sx, sy := emptySeeds()
	if _, err := Run(context.Background(), sx, sy, nil, Config{}); err == nil {
		t.Fatal("empty ladder must error")
	}
}

func TestObserveSeesProgress(t *testing.T) {
	var mu sync.Mutex
	var cards []int64
	cfg := Config{Observe: func(p Progress) {
		mu.Lock()
		cards = append(cards, p.Cardinality)
		mu.Unlock()
	}}
	sx, sy := emptySeeds()
	if _, err := Run(context.Background(), sx, sy, []Engine{completer("e")}, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cards) != 1 || cards[0] != testN {
		t.Fatalf("observed = %v, want one report at %d", cards, testN)
	}
}

// TestGraceDrainDeliversResult pins the done-channel handoff: an engine
// that stops after cancellation but inside the grace window must still get
// its result to the supervisor. The engine-side send is deliberately
// non-blocking on a capacity-1 channel — a cancellation-aware send would
// race awaitStop's post-cancel drain and could drop the result this test
// requires.
func TestGraceDrainDeliversResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	slow := Engine{
		Name: "slow",
		Run: func(rctx context.Context, seedX, seedY []int32, onPhase func(Progress)) (Result, error) {
			seedX[0], seedY[0] = 0, 0
			onPhase(Progress{Engine: "slow", Phase: 1, Cardinality: 1, MateX: seedX, MateY: seedY})
			close(started)
			<-rctx.Done()
			time.Sleep(20 * time.Millisecond) // drain work, well inside grace
			return Result{MateX: seedX, MateY: seedY, Cardinality: 1}, nil
		},
	}
	go func() {
		<-started
		cancel()
	}()
	sx, sy := emptySeeds()
	rep, err := Run(ctx, sx, sy, []Engine{slow}, Config{Grace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rungs[len(rep.Rungs)-1]
	if last.Outcome != Cancelled {
		t.Fatalf("rung outcome = %s, want Cancelled (the grace drain must receive the engine's own result, not abandon it)", last.Outcome)
	}
	if rep.Cardinality != 1 {
		t.Fatalf("cardinality = %d, want the engine-delivered 1", rep.Cardinality)
	}
}
