package supervise

import (
	"context"
	"errors"
	"time"
)

// Transient marks errors worth retrying in place: the failure is expected to
// clear on its own (a dropped superstep exchange, a timed-out peer), so the
// same engine can be re-run without degrading down the ladder.
type Transient interface {
	error
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) is a transient
// failure.
func IsTransient(err error) bool {
	var t Transient
	return errors.As(err, &t) && t.Transient()
}

// Backoff bounds retries of transient failures: up to Attempts retries with
// exponentially growing delays, Base<<(attempt-1) capped at Max.
type Backoff struct {
	Attempts int
	Base     time.Duration // 0 means 10ms
	Max      time.Duration // 0 means 1s
}

// Delay returns the sleep before retry number attempt (1-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Retry runs f, retrying transient errors under b with context-aware
// backoff. Non-transient errors, success, and exhausted attempts all return
// immediately; cancellation during backoff returns ctx.Err joined with the
// last failure.
func Retry(ctx context.Context, b Backoff, f func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = f(ctx)
		if err == nil || !IsTransient(err) || attempt > b.Attempts {
			return err
		}
		if !sleepCtx(ctx, b.Delay(attempt)) {
			return errors.Join(ctx.Err(), err)
		}
	}
}
