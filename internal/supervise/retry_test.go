package supervise

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Attempts: 5, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Defaults kick in for zero values; attempt clamping never panics.
	if d := (Backoff{}).Delay(0); d != 10*time.Millisecond {
		t.Errorf("default Delay(0) = %v, want 10ms", d)
	}
	if d := (Backoff{}).Delay(1000); d != time.Second {
		t.Errorf("default Delay(1000) = %v, want the 1s cap", d)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	var calls int
	err := Retry(context.Background(), Backoff{Attempts: 3, Base: time.Millisecond},
		func(ctx context.Context) error {
			calls++
			if calls < 3 {
				return &fakeTransient{calls}
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want success on call 3", err, calls)
	}
}

func TestRetryNonTransientStops(t *testing.T) {
	var calls int
	hard := errors.New("hard failure")
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Millisecond},
		func(ctx context.Context) error {
			calls++
			return hard
		})
	if !errors.Is(err, hard) || calls != 1 {
		t.Fatalf("err = %v after %d calls, want the hard error after 1 call", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var calls int
	err := Retry(context.Background(), Backoff{Attempts: 2, Base: time.Millisecond},
		func(ctx context.Context) error {
			calls++
			return &fakeTransient{calls}
		})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want the final transient failure", err)
	}
	if calls != 3 { // initial call + 2 retries
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, Backoff{Attempts: 10, Base: time.Hour},
		func(ctx context.Context) error {
			calls++
			return &fakeTransient{calls}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled joined in", err)
	}
	if !IsTransient(err) {
		t.Fatalf("err = %v, want the transient cause joined in", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during the first backoff)", calls)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error is not transient")
	}
	if !IsTransient(&fakeTransient{1}) {
		t.Error("fakeTransient must be transient")
	}
	wrapped := errors.Join(errors.New("context"), &fakeTransient{2})
	if !IsTransient(wrapped) {
		t.Error("wrapped transient must be detected")
	}
}
