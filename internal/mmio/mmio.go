// Package mmio reads and writes Matrix Market coordinate files and converts
// them to bipartite graphs following the paper's construction (§IV-B): an
// n1×n2 matrix A becomes G(X ∪ Y, E) with a vertex in X per row, a vertex in
// Y per column, and edges in both directions per nonzero, so |E| = 2·nnz(A).
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graftmatch/internal/bipartite"
)

// Read parses a Matrix Market coordinate file (pattern, real, integer, or
// complex; general, symmetric, skew-symmetric, or hermitian) and returns
// the bipartite graph of its nonzero structure. Values are ignored: only
// the sparsity pattern matters for cardinality matching. Default Limits
// apply; use ReadLimited to tighten them.
func Read(r io.Reader) (*bipartite.Graph, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited is Read with explicit parse limits, enforced on the declared
// sizes before any size-dependent allocation.
func ReadLimited(r io.Reader, lim Limits) (*bipartite.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("mmio: missing %%%%MatrixMarket header")
	}
	if header[1] != "matrix" {
		return nil, fmt.Errorf("mmio: unsupported object %q", header[1])
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported format %q (only coordinate)", header[2])
	}
	field, sym := header[3], header[4]
	switch field {
	case "pattern", "real", "integer", "complex":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	symmetric := false
	switch sym {
	case "general":
	case "symmetric", "skew-symmetric", "hermitian":
		symmetric = true
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", sym)
	}

	// Skip comments, find size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("mmio: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, fmt.Errorf("mmio: malformed size line %q", sizeLine)
	}
	n1, err := strconv.ParseInt(dims[0], 10, 32)
	if err != nil || n1 < 0 {
		return nil, fmt.Errorf("mmio: bad row count %q", dims[0])
	}
	n2, err := strconv.ParseInt(dims[1], 10, 32)
	if err != nil || n2 < 0 {
		return nil, fmt.Errorf("mmio: bad column count %q", dims[1])
	}
	nnz, err := strconv.ParseInt(dims[2], 10, 64)
	if err != nil || nnz < 0 {
		return nil, fmt.Errorf("mmio: bad nnz %q", dims[2])
	}
	if symmetric && n1 != n2 {
		return nil, fmt.Errorf("mmio: symmetric matrix must be square, got %dx%d", n1, n2)
	}
	if err := lim.checkDims(n1, n2); err != nil {
		return nil, err
	}
	if err := lim.checkEntries(nnz, symmetric); err != nil {
		return nil, err
	}

	b := bipartite.NewBuilder(int32(n1), int32(n2))
	// Cap the speculative reservation: the declared nnz is untrusted until
	// that many entries have actually arrived.
	reserve := nnz
	if reserve > reserveCap {
		reserve = reserveCap
	}
	b.Reserve(int(reserve))
	var read int64
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: malformed entry line %q", line)
		}
		i, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index %q", f[0])
		}
		j, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad column index %q", f[1])
		}
		if i < 1 || i > n1 || j < 1 || j > n2 {
			return nil, fmt.Errorf("mmio: entry (%d,%d) out of %dx%d", i, j, n1, n2)
		}
		if err := b.AddEdge(int32(i-1), int32(j-1)); err != nil {
			return nil, err
		}
		if symmetric && i != j {
			if err := b.AddEdge(int32(j-1), int32(i-1)); err != nil {
				return nil, err
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if read < nnz {
		return nil, fmt.Errorf("mmio: expected %d entries, got %d", nnz, read)
	}
	return b.Build(), nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*bipartite.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits g as a general pattern coordinate Matrix Market file.
func Write(w io.Writer, g *bipartite.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.NX(), g.NY(), g.NumEdges()); err != nil {
		return err
	}
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", x+1, y+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes g to path in Matrix Market format.
func WriteFile(path string, g *bipartite.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
