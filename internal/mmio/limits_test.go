package mmio

import (
	"strings"
	"testing"
	"time"
)

func TestReadRejectsHugeDeclaredNnz(t *testing.T) {
	// 987654321987 entries would reserve ~8 TB if the header were trusted.
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 987654321987\n1 1\n"
	start := time.Now()
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("huge declared nnz accepted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rejection took %v; limit must trip before allocation", elapsed)
	}
}

func TestReadRejectsDimsOverLimit(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n1000 1000 1\n1 1\n"
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxDim: 999}); err == nil {
		t.Fatal("dims over MaxDim accepted")
	}
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxDim: 1000}); err != nil {
		t.Fatalf("dims at MaxDim rejected: %v", err)
	}
}

func TestReadRejectsEntriesOverLimit(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n10 10 4\n1 1\n2 2\n3 3\n4 4\n"
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 3}); err == nil {
		t.Fatal("nnz over MaxEntries accepted")
	}
	g, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 4})
	if err != nil {
		t.Fatalf("nnz at MaxEntries rejected: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("got %d edges, want 4", g.NumEdges())
	}
}

func TestReadSymmetricDoublesAgainstLimit(t *testing.T) {
	// 3 off-diagonal entries expand to 6 edges; a budget of 5 must reject
	// the declared count up front, 6 must admit it.
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 1\n4 2\n"
	if _, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 5}); err == nil {
		t.Fatal("symmetric expansion over MaxEntries accepted")
	}
	g, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 6})
	if err != nil {
		t.Fatalf("symmetric expansion at MaxEntries rejected: %v", err)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("got %d edges, want 6", g.NumEdges())
	}
}

func TestReadCapsSpeculativeReserve(t *testing.T) {
	// Under the entry limit but far over reserveCap: the parser must not
	// trust the header, and the short file then fails the entry count check
	// quickly instead of exhausting memory first.
	in := "%%MatrixMarket matrix coordinate pattern general\n1000000 1000000 1073741824\n1 1\n"
	_, err := ReadLimited(strings.NewReader(in), Limits{MaxEntries: 1 << 31})
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("got %v, want truncation error", err)
	}
}

func TestEdgeListRejectsDeclaredDimsOverLimit(t *testing.T) {
	in := "# 2000 2000\n0 0\n"
	if _, err := ReadEdgeListLimited(strings.NewReader(in), Limits{MaxDim: 1999}); err == nil {
		t.Fatal("declared header over MaxDim accepted")
	}
}

func TestEdgeListRejectsIdsOverLimit(t *testing.T) {
	in := "5 0\n"
	if _, err := ReadEdgeListLimited(strings.NewReader(in), Limits{MaxDim: 5}); err == nil {
		t.Fatal("vertex id at MaxDim (needs MaxDim+1 vertices) accepted")
	}
	if _, err := ReadEdgeListLimited(strings.NewReader(in), Limits{MaxDim: 6}); err != nil {
		t.Fatalf("vertex id under MaxDim rejected: %v", err)
	}
}

func TestEdgeListRejectsEntryCountOverLimit(t *testing.T) {
	in := "0 0\n0 1\n1 0\n"
	if _, err := ReadEdgeListLimited(strings.NewReader(in), Limits{MaxEntries: 2}); err == nil {
		t.Fatal("edge count over MaxEntries accepted")
	}
	if _, err := ReadEdgeListLimited(strings.NewReader(in), Limits{MaxEntries: 3}); err != nil {
		t.Fatalf("edge count at MaxEntries rejected: %v", err)
	}
}

func TestLimitsZeroValueUsesDefaults(t *testing.T) {
	var l Limits
	if l.maxDim() != DefaultMaxDim || l.maxEntries() != DefaultMaxEntries {
		t.Fatalf("zero-value limits resolve to %d/%d", l.maxDim(), l.maxEntries())
	}
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n"
	if _, err := Read(strings.NewReader(in)); err != nil {
		t.Fatalf("defaults reject a benign file: %v", err)
	}
}
