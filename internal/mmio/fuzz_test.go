package mmio

import (
	"strings"
	"testing"

	"graftmatch/internal/bipartite"
)

// FuzzRead ensures the Matrix Market parser never panics and that any
// successfully parsed graph passes full structural validation. Run with
// `go test -fuzz=FuzzRead ./internal/mmio` for continuous fuzzing; the seed
// corpus below runs as a normal test.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n",
		"%%MatrixMarket matrix coordinate pattern general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate pattern general\n1 1 1\n",
		"",
		"garbage",
		"%%MatrixMarket matrix coordinate pattern general\n-1 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n999999999999 2 1\n1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := bipartite.Validate(g); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
	})
}

// FuzzReadEdgeList is the edge-list analog of FuzzRead.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"0 0\n1 1\n",
		"# 4 4\n0 3\n3 0\n",
		"# comment\n%also\n\n2 2\n",
		"x y\n",
		"0\n",
		"-1 -1\n",
		"99999999999999999999 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := bipartite.Validate(g); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
	})
}
