package mmio

import (
	"strings"
	"testing"

	"graftmatch/internal/bipartite"
)

// fuzzLimits keeps fuzzing cheap: hostile headers declaring huge dimensions
// or entry counts must be rejected before allocation, so the fuzzer probes
// parser logic instead of the allocator.
var fuzzLimits = Limits{MaxDim: 1 << 20, MaxEntries: 1 << 22}

// FuzzRead ensures the Matrix Market parser never panics and that any
// successfully parsed graph passes full structural validation. Run with
// `go test -fuzz=FuzzRead ./internal/mmio` for continuous fuzzing; the seed
// corpus below runs as a normal test.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n",
		"%%MatrixMarket matrix coordinate pattern general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate pattern general\n1 1 1\n",
		"",
		"garbage",
		"%%MatrixMarket matrix coordinate pattern general\n-1 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n999999999999 2 1\n1 1\n",
		// Regression seeds: headers that once drove allocation from untrusted
		// declared sizes. A lying nnz must not reserve terabytes, huge
		// dimensions must not materialize multi-gigabyte CSR arrays, and
		// symmetric doubling must not overflow the entry budget.
		"%%MatrixMarket matrix coordinate pattern general\n2 2 987654321987\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2000000000 2000000000 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 9223372036854775807\n1 1\n",
		"%%MatrixMarket matrix coordinate integer general\n2147483647 1 1\n1 1 7\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadLimited(strings.NewReader(in), fuzzLimits)
		if err != nil {
			return
		}
		if err := bipartite.Validate(g); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
	})
}

// FuzzReadEdgeList is the edge-list analog of FuzzRead.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"0 0\n1 1\n",
		"# 4 4\n0 3\n3 0\n",
		"# comment\n%also\n\n2 2\n",
		"x y\n",
		"0\n",
		"-1 -1\n",
		"99999999999999999999 0\n",
		// Regression seeds: declared or inferred sizes past the limits.
		"# 2000000000 2000000000\n0 0\n",
		"2000000000 0\n",
		"0 2147483646\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeListLimited(strings.NewReader(in), fuzzLimits)
		if err != nil {
			return
		}
		if err := bipartite.Validate(g); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
	})
}
