package mmio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.ER(30, 40, 120, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NX() != g.NX() || g2.NY() != g.NY() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", g, g2)
	}
	if err := bipartite.Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListInferredSizes(t *testing.T) {
	in := "0 0\n2 1\n# a comment\n\n1 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NX() != 3 || g.NY() != 4 || g.NumEdges() != 3 {
		t.Fatalf("inferred %v", g)
	}
}

func TestEdgeListHeaderSizes(t *testing.T) {
	in := "# 10 20\n0 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NX() != 10 || g.NY() != 20 {
		t.Fatalf("declared sizes ignored: %v", g)
	}
}

func TestEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"short line": "0\n",
		"bad x":      "a 0\n",
		"bad y":      "0 b\n",
		"negative":   "-1 0\n",
		"over size":  "# 1 1\n5 5\n",
	} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestAutoRoundTrips(t *testing.T) {
	g := gen.Grid(6, 6)
	dir := t.TempDir()
	for _, name := range []string{"a.mtx", "b.el", "c.txt", "d.mtx.gz", "e.el.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteAuto(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := ReadAuto(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() || g2.NX() != g.NX() {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestAutoErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadAuto(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(dir, "x.unknown")
	if err := WriteAuto(bad, gen.Grid(2, 2)); err == nil {
		t.Error("want error for unknown write extension")
	}
	// Unknown extension on read.
	plain := filepath.Join(dir, "y.dat")
	if err := WriteAuto(plain+".mtx", gen.Grid(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAuto(plain); err == nil {
		t.Error("want error for unknown read extension")
	}
	// Corrupt gzip.
	corrupt := filepath.Join(dir, "z.mtx.gz")
	if err := WriteAuto(filepath.Join(dir, "tmp.mtx"), gen.Grid(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := writeRaw(corrupt, []byte("not gzip")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAuto(corrupt); err == nil {
		t.Error("want error for corrupt gzip")
	}
}

func writeRaw(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
