package mmio

import "fmt"

// Default bounds applied when a Limits field is zero. They admit any
// realistic instance (billions of entries) while rejecting headers that
// declare sizes no machine could hold.
const (
	DefaultMaxDim     int32 = 1<<31 - 2
	DefaultMaxEntries int64 = 1 << 34
)

// reserveCap bounds the speculative pre-allocation derived from a declared
// entry count: a lying header must not force a large allocation before any
// entries have actually been read. Real entries still grow the edge list
// incrementally, so memory tracks the bytes actually consumed.
const reserveCap = 1 << 20

// Limits bounds what the parsers accept, checked before any size-dependent
// allocation so hostile headers (huge declared dimensions or entry counts)
// fail fast instead of exhausting memory. The zero value applies the
// package defaults.
type Limits struct {
	// MaxDim caps rows and columns (each side of the bipartite graph);
	// 0 means DefaultMaxDim.
	MaxDim int32

	// MaxEntries caps the number of entries, counted after symmetry
	// expansion; 0 means DefaultMaxEntries.
	MaxEntries int64
}

func (l Limits) maxDim() int32 {
	if l.MaxDim > 0 {
		return l.MaxDim
	}
	return DefaultMaxDim
}

func (l Limits) maxEntries() int64 {
	if l.MaxEntries > 0 {
		return l.MaxEntries
	}
	return DefaultMaxEntries
}

// checkDims rejects declared part sizes beyond the limit. The parsers have
// already bounds-checked n1 and n2 into int32, so this is the policy layer,
// not the overflow guard.
func (l Limits) checkDims(n1, n2 int64) error {
	if max := int64(l.maxDim()); n1 > max || n2 > max {
		return fmt.Errorf("mmio: dimensions %dx%d exceed limit %d", n1, n2, max)
	}
	return nil
}

// checkEntries rejects a declared or accumulated entry count beyond the
// limit. doubled marks symmetric expansion, where every off-diagonal entry
// becomes two edges; the comparison is arranged so 2*nnz can never overflow.
func (l Limits) checkEntries(nnz int64, doubled bool) error {
	max := l.maxEntries()
	if nnz > max || (doubled && nnz > max/2) {
		return fmt.Errorf("mmio: entry count %d exceeds limit %d", nnz, max)
	}
	return nil
}
