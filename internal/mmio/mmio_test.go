package mmio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
)

func TestReadPatternGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 3
1 1
2 3
3 4
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NX() != 3 || g.NY() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph = %v", g)
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("edges missing")
	}
}

func TestReadRealValuesIgnored(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 3.5
2 2 -1.0e3
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) mirrors to (1,2); (3,3) is diagonal, no mirror.
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) || !g.HasEdge(2, 2) {
		t.Fatal("symmetric mirroring wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no header":        "3 3 1\n1 1\n",
		"bad object":       "%%MatrixMarket vector coordinate pattern general\n1 1 0\n",
		"bad format":       "%%MatrixMarket matrix array pattern general\n1 1 0\n",
		"bad field":        "%%MatrixMarket matrix coordinate weird general\n1 1 0\n",
		"bad symmetry":     "%%MatrixMarket matrix coordinate pattern diagonal\n1 1 0\n",
		"nonsquare sym":    "%%MatrixMarket matrix coordinate pattern symmetric\n2 3 0\n",
		"short size":       "%%MatrixMarket matrix coordinate pattern general\n2 3\n",
		"bad rows":         "%%MatrixMarket matrix coordinate pattern general\nx 3 0\n",
		"bad cols":         "%%MatrixMarket matrix coordinate pattern general\n3 x 0\n",
		"bad nnz":          "%%MatrixMarket matrix coordinate pattern general\n3 3 x\n",
		"truncated":        "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n",
		"entry short":      "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1\n",
		"entry bad row":    "%%MatrixMarket matrix coordinate pattern general\n3 3 1\nx 1\n",
		"entry bad col":    "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 x\n",
		"row out of range": "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n4 1\n",
		"col zero":         "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 0\n",
		"missing size":     "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := gen.ER(40, 30, 150, 5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NX() != g.NX() || g2.NY() != g.NY() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %v vs %v", g, g2)
	}
	e1, e2 := g.Edges(nil), g2.Edges(nil)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	if err := bipartite.Validate(g2); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.mtx")
	g := gen.Grid(5, 5)
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("want error for missing file")
	}
	if err := WriteFile(filepath.Join(dir, "nodir", "x.mtx"), g); err == nil {
		t.Fatal("want error for unwritable path")
	}
	_ = os.Remove(path)
}

func TestHeaderCaseInsensitive(t *testing.T) {
	in := "%%MATRIXMARKET MATRIX COORDINATE PATTERN GENERAL\n1 1 1\n1 1\n"
	if _, err := Read(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
}
