package mmio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graftmatch/internal/bipartite"
)

// ReadEdgeList parses a whitespace-separated edge list with 0-based vertex
// ids ("x y" per line, '#' or '%' comments allowed). Part sizes are
// inferred as max id + 1 unless a header line "# nx ny" appears first.
// Default Limits apply; use ReadEdgeListLimited to tighten them.
func ReadEdgeList(r io.Reader) (*bipartite.Graph, error) {
	return ReadEdgeListLimited(r, Limits{})
}

// ReadEdgeListLimited is ReadEdgeList with explicit parse limits, checked
// against the declared header and against every id and accumulated edge as
// it streams in.
func ReadEdgeListLimited(r io.Reader, lim Limits) (*bipartite.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	maxDim := int64(lim.maxDim())
	maxEntries := lim.maxEntries()
	var edges []bipartite.Edge
	var nx, ny int32
	declared := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			// Optional size header: "# nx ny".
			f := strings.Fields(strings.TrimLeft(line, "#% "))
			if !declared && len(f) == 2 {
				a, errA := strconv.ParseInt(f[0], 10, 32)
				b, errB := strconv.ParseInt(f[1], 10, 32)
				if errA == nil && errB == nil && a >= 0 && b >= 0 {
					if err := lim.checkDims(a, b); err != nil {
						return nil, err
					}
					nx, ny = int32(a), int32(b)
					declared = true
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: malformed edge line %q", line)
		}
		x, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil || x < 0 {
			return nil, fmt.Errorf("mmio: bad X id %q", f[0])
		}
		y, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil || y < 0 {
			return nil, fmt.Errorf("mmio: bad Y id %q", f[1])
		}
		// Ids are 0-based, so id+1 vertices must fit the dimension limit.
		if x >= maxDim || y >= maxDim {
			return nil, fmt.Errorf("mmio: vertex id (%d,%d) exceeds dimension limit %d", x, y, maxDim)
		}
		if int64(len(edges)) >= maxEntries {
			return nil, fmt.Errorf("mmio: entry count exceeds limit %d", maxEntries)
		}
		edges = append(edges, bipartite.Edge{X: int32(x), Y: int32(y)})
		if !declared {
			if int32(x) >= nx {
				nx = int32(x) + 1
			}
			if int32(y) >= ny {
				ny = int32(y) + 1
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	return bipartite.FromEdges(nx, ny, edges)
}

// WriteEdgeList emits g as a 0-based edge list with a "# nx ny" header.
func WriteEdgeList(w io.Writer, g *bipartite.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.NX(), g.NY()); err != nil {
		return err
	}
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", x, y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAuto reads a graph from path, dispatching on extension:
// ".mtx" Matrix Market, ".el"/".txt" edge list, with a trailing ".gz"
// transparently decompressed.
func ReadAuto(path string) (*bipartite.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("mmio: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
		name = strings.TrimSuffix(name, ".gz")
	}
	switch {
	case strings.HasSuffix(name, ".mtx"):
		return Read(r)
	case strings.HasSuffix(name, ".el"), strings.HasSuffix(name, ".txt"):
		return ReadEdgeList(r)
	default:
		return nil, fmt.Errorf("mmio: unknown extension on %q (want .mtx, .el, .txt, optionally .gz)", path)
	}
}

// WriteAuto writes g to path, dispatching on extension like ReadAuto.
func WriteAuto(path string, g *bipartite.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	name := path
	if strings.HasSuffix(name, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
		name = strings.TrimSuffix(name, ".gz")
	}
	switch {
	case strings.HasSuffix(name, ".mtx"):
		err = Write(w, g)
	case strings.HasSuffix(name, ".el"), strings.HasSuffix(name, ".txt"):
		err = WriteEdgeList(w, g)
	default:
		err = fmt.Errorf("mmio: unknown extension on %q", path)
	}
	if zw != nil {
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
